// Per-node message queues with EDF ordering and class precedence.
//
// The paper's local queueing rules (§3): a node offers its logical
// real-time connection traffic first; best-effort is requested only when
// no RT message is queued; non-real-time only when neither RT nor BE is
// queued.  Within the RT and BE queues, messages are kept in
// earliest-deadline-first order (ties broken by arrival, then id, for
// determinism); the NRT queue is FIFO.
//
// The set is indexed: a flat id -> (class, EDF key) map makes `contains`
// O(1) and lets `consume_slot` binary-search the owning queue instead of
// scanning all three.  `head` caches its answer per queue; the cache
// survives across slots while the queue is unmutated and no skipped
// (not-yet-arrived) message becomes eligible.  Message ids must be unique
// within one set, which the network guarantees by numbering messages from
// a single counter.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/flat_map.hpp"
#include "core/message.hpp"
#include "sim/time.hpp"

namespace ccredf::core {

class EdfQueueSet {
 public:
  /// Inserts a message into its class queue (EDF position for RT/BE).
  void push(Message msg);

  /// The message the node would request a slot for at time `sample`:
  /// the earliest-deadline *eligible* (arrival <= sample) message of the
  /// highest non-empty class.  Returns nullptr when nothing is eligible.
  /// The pointer stays valid until the next mutating call.  Inline: the
  /// collection phase calls this once per candidate per slot, and the
  /// memoised answer (unchanged queue, monotone sample) is a few loads.
  [[nodiscard]] const Message* head(sim::TimePoint sample) const {
    // Class precedence (paper §3): RT strictly before BE before NRT,
    // even if a queued BE message has a tighter deadline.
    if (const Message* m = first_eligible(rt_, rt_head_, sample)) return m;
    if (const Message* m = first_eligible(be_, be_head_, sample)) return m;
    if (const Message* m = first_eligible(nrt_, nrt_head_, sample)) return m;
    return nullptr;
  }

  /// True iff message `id` is still queued.
  [[nodiscard]] bool contains(MessageId id) const {
    return index_.contains(id);
  }

  /// Marks one slot of message `id` as transmitted; removes the message
  /// when its last slot has been sent and returns the completed Message.
  std::optional<Message> consume_slot(MessageId id);

  /// Removes every queued message of a closed connection; returns how
  /// many were dropped.
  std::size_t drop_connection(ConnectionId id);

  /// Re-keys every queued message of connection `id` to a new absolute
  /// deadline (CBS postponement: the server slid its deadline one period
  /// and its whole backlog must follow).  Re-insertion goes through the
  /// normal EDF ordering, so the (arrival, id) tie-break keeps the
  /// server's jobs in FIFO order among themselves.  Returns how many
  /// messages moved.
  std::size_t reschedule_connection(ConnectionId id,
                                    sim::TimePoint deadline);

  /// Removes all queued messages (node failure); returns how many.
  std::size_t clear();

  [[nodiscard]] std::size_t size() const {
    return rt_.size() + be_.size() + nrt_.size();
  }
  [[nodiscard]] bool empty() const { return size() == 0; }
  [[nodiscard]] std::size_t size_of(TrafficClass c) const;

  /// Oldest unexpired deadline in the RT queue (for diagnostics).
  [[nodiscard]] std::optional<sim::TimePoint> earliest_rt_deadline() const;

  /// Pre-sizes queues and index so steady-state operation stays off the
  /// allocator once the high-water mark is reached.
  void reserve(std::size_t messages);

 private:
  static constexpr std::size_t kNoHead = static_cast<std::size_t>(-1);

  /// Where `consume_slot` should look for an id, plus the EDF key it was
  /// inserted with (the key never changes while queued, so a binary
  /// search with it lands exactly on the message).
  struct IndexEntry {
    TrafficClass cls = TrafficClass::kBestEffort;
    sim::TimePoint deadline;
    sim::TimePoint arrival;
  };

  /// Memoised `first_eligible` answer.  Valid while the set is unmutated
  /// (`version` matches), the sample has not moved backwards, and no
  /// message that was skipped for being in the future has arrived.
  struct HeadCache {
    std::uint64_t version = 0;  // 0 never matches (version_ starts at 1)
    sim::TimePoint sample;
    std::size_t index = kNoHead;
    sim::TimePoint min_skipped_arrival = sim::TimePoint::infinity();
  };

  // Sorted vectors (EDF order via insertion; FIFO for NRT).  Traffic is
  // light enough per node that O(n) insertion moves are immaterial, and
  // contiguous storage beats deque chunk churn on the per-slot scan.
  std::vector<Message> rt_;
  std::vector<Message> be_;
  std::vector<Message> nrt_;
  FlatMap64<IndexEntry> index_;
  std::uint64_t version_ = 1;
  mutable HeadCache rt_head_;
  mutable HeadCache be_head_;
  mutable HeadCache nrt_head_;

  void insert_edf(std::vector<Message>& q, Message msg);
  [[nodiscard]] const Message* first_eligible(const std::vector<Message>& q,
                                              HeadCache& cache,
                                              sim::TimePoint sample) const {
    if (cache.version == version_ && sample >= cache.sample &&
        sample < cache.min_skipped_arrival) {
      // Unmutated, and nothing skipped last time has arrived by
      // `sample`: the answer cannot have changed.
      return cache.index == kNoHead ? nullptr : &q[cache.index];
    }
    return first_eligible_scan(q, cache, sample);
  }
  [[nodiscard]] const Message* first_eligible_scan(
      const std::vector<Message>& q, HeadCache& cache,
      sim::TimePoint sample) const;
  std::optional<Message> consume_at(std::vector<Message>& q,
                                    std::size_t pos);
  [[nodiscard]] std::size_t locate_sorted(const std::vector<Message>& q,
                                          const IndexEntry& entry,
                                          MessageId id) const;
  std::size_t drop_connection_in(std::vector<Message>& q, ConnectionId id);
  std::size_t reschedule_in(std::vector<Message>& q, ConnectionId id,
                            sim::TimePoint deadline);

  [[nodiscard]] std::vector<Message>& queue_of(TrafficClass c);

  /// Scratch for reschedule_connection (postponements can fire once per
  /// granted slot at budget 1; keep them off the allocator).
  std::vector<Message> resched_scratch_;
};

}  // namespace ccredf::core
