// Per-node message queues with EDF ordering and class precedence.
//
// The paper's local queueing rules (§3): a node offers its logical
// real-time connection traffic first; best-effort is requested only when
// no RT message is queued; non-real-time only when neither RT nor BE is
// queued.  Within the RT and BE queues, messages are kept in
// earliest-deadline-first order (ties broken by arrival, then id, for
// determinism); the NRT queue is FIFO.
#pragma once

#include <deque>
#include <optional>

#include "core/message.hpp"
#include "sim/time.hpp"

namespace ccredf::core {

class EdfQueueSet {
 public:
  /// Inserts a message into its class queue (EDF position for RT/BE).
  void push(Message msg);

  /// The message the node would request a slot for at time `sample`:
  /// the earliest-deadline *eligible* (arrival <= sample) message of the
  /// highest non-empty class.  Returns nullptr when nothing is eligible.
  /// The pointer stays valid until the next mutating call.
  [[nodiscard]] const Message* head(sim::TimePoint sample) const;

  /// True iff message `id` is still queued.
  [[nodiscard]] bool contains(MessageId id) const;

  /// Marks one slot of message `id` as transmitted; removes the message
  /// when its last slot has been sent and returns the completed Message.
  std::optional<Message> consume_slot(MessageId id);

  /// Removes every queued message of a closed connection; returns how
  /// many were dropped.
  std::size_t drop_connection(ConnectionId id);

  /// Removes all queued messages (node failure); returns how many.
  std::size_t clear();

  [[nodiscard]] std::size_t size() const {
    return rt_.size() + be_.size() + nrt_.size();
  }
  [[nodiscard]] bool empty() const { return size() == 0; }
  [[nodiscard]] std::size_t size_of(TrafficClass c) const;

  /// Oldest unexpired deadline in the RT queue (for diagnostics).
  [[nodiscard]] std::optional<sim::TimePoint> earliest_rt_deadline() const;

 private:
  // Deques keep EDF order by sorted insertion; traffic is light enough
  // per node (one request per slot) that O(n) insertion is immaterial
  // next to the simulation itself.
  std::deque<Message> rt_;
  std::deque<Message> be_;
  std::deque<Message> nrt_;

  static void insert_edf(std::deque<Message>& q, Message msg);
  [[nodiscard]] static const Message* first_eligible(
      const std::deque<Message>& q, sim::TimePoint sample);
  std::optional<Message> consume_in(std::deque<Message>& q, MessageId id);
};

}  // namespace ccredf::core
