// Hypercycle reservation planner (ROADMAP item 4).
//
// Per-slot greedy EDF arbitration leaves throughput on the table for
// periodic traffic whose entire future is known at admission: Eq. 5
// charges every connection e_i/P_i slots of ring capacity, but a slot
// can carry several segment-disjoint transmissions at once (paper §2
// spatial reuse), so the per-grant capacity of the ring exceeds the
// per-slot capacity U_max of Eq. 6 by the achievable packing factor.
//
// The planner turns that observation into a constructive admission
// proof.  At connection admit/close time it lays the whole grant
// schedule out over the hyperperiod H = lcm(P_i) (capped; overflow or
// an over-cap H falls back cleanly to pure TCMA):
//
//   1. Greedy-EDF layout over four hyperperiod windows: per slot the
//      pending jobs are served earliest-deadline-first, and further
//      jobs are packed into the same slot while their link segments
//      stay pairwise disjoint and avoid the master's clock-break link
//      -- exactly the Arbiter's spatial-reuse rule, applied to the
//      *known* future instead of the sampled present.
//   2. Steady-state extraction: windows 3 and 4 must be the same
//      bundle pattern shifted by H slots (job indices shifted by
//      H/P_i).  The plan is then a finite transient prefix (windows
//      1-2) plus one cyclic window repeated forever.
//   3. Feasibility: a DOMINATING run of the cursor execution model
//      below, in integer picosecond arithmetic -- every slot start is
//      bounded by one wait step past its bundle's release instant, so
//      the run is a monotone upper bound of the exact cursor.  Every
//      completion is checked against its job's absolute deadline, cycle
//      by cycle, until the cycle-boundary offset from the nominal grid
//      stops increasing; from there every later cycle is dominated by
//      an already-checked one, so the check holds forever.  No
//      contraction within the probe bound, or any miss, invalidates
//      the plan (fallback to TCMA, never a wrong admission).
//
// Execution model (mirrored exactly by net::Network's planned mode):
// the plan is an ordered list of bundles consumed by a cursor.  During
// slot k (start T, master m) the next bundle B is *eligible* iff every
// granted job has been released by T, i.e. origin + t_slot *
// release_slot(B) <= T.  If eligible, slot k+1 carries B: it starts at
// T + t_slot + gap(m, master(B)).  Otherwise slot k+1 idles with the
// master unchanged (gap(m, m) > 0: the clock stop/detect bits).
// Because the wire is never consulted, planned slots skip the entire
// collection phase; `plan_for_slot` additionally exposes the O(1)
// nominal-grid lookup of the cyclic window.
#pragma once

#include <cstdint>
#include <vector>

#include "common/nodeset.hpp"
#include "common/types.hpp"
#include "core/clocking.hpp"
#include "core/connection.hpp"
#include "phy/ring_phy.hpp"
#include "ring/topology.hpp"
#include "sim/time.hpp"

namespace ccredf::core {

class HypercyclePlanner {
 public:
  struct Config {
    /// Hyperperiod cap: a connection set whose lcm of periods exceeds
    /// this (or overflows) is simply not planned -- the engine keeps
    /// running pure slot-by-slot TCMA.
    std::int64_t max_hyperperiod_slots = std::int64_t{1} << 16;
    /// Pack segment-disjoint transfers into shared slots (must match
    /// the engine's arbitration setting so planned and unplanned
    /// capacity agree).
    bool spatial_reuse = true;
  };

  /// One granted transmission inside a bundle.  `release_slot` /
  /// deadline are grid-slot indices: absolute for prefix bundles,
  /// relative to the cyclic window origin for cyclic bundles (may be
  /// negative when the job was released in an earlier window).
  struct Grant {
    ConnectionId conn = kNoConnection;
    NodeId source = kInvalidNode;
    NodeId hops = 0;
    LinkSet links;
    NodeSet dests;
    /// True on the job's last slot (message size e_i reached).
    bool completes = false;
    std::int64_t release_slot = 0;
    /// Relative deadline D_i of the connection, in slots.
    std::int64_t deadline_slots = 0;
    /// Source -> furthest-destination propagation, for the completion
    /// check.
    sim::Duration path_delay;
  };

  /// One planned slot: a set of segment-disjoint grants sharing it.
  struct Bundle {
    NodeId master = kInvalidNode;
    /// The granted sources (the distribution packet's grant mask).
    NodeSet granted;
    /// Latest release among the granted jobs -- the bundle is eligible
    /// once the grid instant of this slot index has passed.  Absolute
    /// for prefix bundles, cycle-relative for cyclic ones.
    std::int64_t release_slot = 0;
    /// Nominal layout slot (same coordinates as release_slot); the
    /// cyclic window's `plan_for_slot` table is keyed on it.
    std::int64_t layout_slot = 0;
    std::uint32_t first_grant = 0;
    std::uint32_t grant_count = 0;
  };

  HypercyclePlanner(const phy::RingPhy* phy, ring::RingTopology topo,
                    sim::Duration slot_time, Config cfg);

  /// Drops every registered connection and any built plan.
  void clear();

  /// Registers a periodic connection.  `base_slot` is the grid-slot
  /// index of its first release (the connection's release base must sit
  /// exactly on the t_slot grid; the caller checks alignment).
  void add(ConnectionId id, const ConnectionParams& params,
           std::int64_t base_slot);

  [[nodiscard]] std::size_t connection_count() const { return conns_.size(); }

  /// Lays out, pattern-matches and feasibility-checks the plan for the
  /// registered set, anchored at engine state (`anchor_start`,
  /// `anchor_master`) -- the start and master of the slot whose
  /// decision phase runs next.  Returns valid().
  bool build(sim::TimePoint anchor_start, NodeId anchor_master);

  [[nodiscard]] bool valid() const { return valid_; }
  /// Human-readable cause of the last failed build ("" while valid).
  [[nodiscard]] const char* invalid_reason() const { return reason_; }

  [[nodiscard]] std::int64_t hyperperiod_slots() const { return hyper_; }
  /// Grid slot of cyclic-window occurrence 0, slot offset 0.
  [[nodiscard]] std::int64_t cycle_origin_slot() const {
    return cycle_origin_;
  }
  /// Sum of e_i/P_i over the registered set (may exceed Eq. 6 U_max --
  /// that is the point).
  [[nodiscard]] double planned_utilisation() const;

  /// True iff `id` is covered by the current *valid* plan.
  [[nodiscard]] bool is_planned(ConnectionId id) const {
    return planned_index(id) >= 0;
  }
  /// Dense per-plan index of `id` (pending-queue slot), or -1.
  [[nodiscard]] std::int32_t planned_index(ConnectionId id) const {
    if (!valid_ || id >= conn_index_.size()) return -1;
    return conn_index_[id];
  }

  /// Transient bundles (absolute coordinates), in execution order.
  [[nodiscard]] const std::vector<Bundle>& prefix() const { return prefix_; }
  /// One cyclic window (cycle-relative coordinates), in execution
  /// order; occurrence n lives at grid slots cycle_origin + n*H + rel.
  [[nodiscard]] const std::vector<Bundle>& cycle() const { return cycle_; }
  [[nodiscard]] const Grant* grants(const Bundle& b) const {
    return grants_.data() + b.first_grant;
  }

  /// O(1) nominal-grid lookup: the index into cycle() of the bundle
  /// the steady-state layout places at cyclic offset `slot_mod_h`
  /// (in [0, H)), or -1 when that grid slot carries no planned grant.
  [[nodiscard]] std::int32_t plan_for_slot(std::int64_t slot_mod_h) const {
    return slot_table_[static_cast<std::size_t>(slot_mod_h)];
  }

 private:
  struct ConnInfo {
    ConnectionId id = kNoConnection;
    NodeId source = kInvalidNode;
    NodeId hops = 0;
    LinkSet links;
    NodeSet dests;
    sim::Duration path_delay;
    std::int64_t size = 1;
    std::int64_t period = 1;
    std::int64_t deadline = 1;
    std::int64_t base = 0;
  };

  bool fail(const char* reason);
  bool layout(std::vector<Bundle>& bundles, std::vector<Grant>& grants,
              std::vector<std::int64_t>& grant_jobs, std::int64_t s0,
              std::int64_t horizon_end);
  bool extract_steady_state(const std::vector<Bundle>& bundles,
                            const std::vector<Grant>& grants,
                            const std::vector<std::int64_t>& grant_jobs);
  bool feasible(sim::TimePoint anchor_start, NodeId anchor_master);

  const phy::RingPhy* phy_;
  ring::RingTopology topo_;
  HandoverModel handover_;
  sim::Duration t_slot_;
  Config cfg_;

  std::vector<ConnInfo> conns_;

  bool valid_ = false;
  const char* reason_ = "not built";
  std::int64_t hyper_ = 0;
  std::int64_t cycle_origin_ = 0;
  std::vector<Bundle> prefix_;
  std::vector<Bundle> cycle_;
  std::vector<Grant> grants_;
  std::vector<std::int32_t> slot_table_;
  std::vector<std::int32_t> conn_index_;
};

}  // namespace ccredf::core
