// Declarative parameter grids for scenario sweeps.
//
// A GridSpec is the cross product of per-axis value lists (protocol, ring
// size, offered utilisation, workload mix, workload-set seed) repeated
// `repetitions` times.  expand() enumerates the grid points in a fixed
// canonical order (protocol outermost, seed innermost), which the runner
// and the report rely on: shard -> (point, repetition) numbering is the
// same no matter how many worker threads execute the sweep.
//
// Determinism contract: the workload of a shard is keyed on
// (base_seed, workload_key(point), repetition) via sim::Rng::stream_seed.
// workload_key deliberately EXCLUDES the protocol axis, so CCR-EDF,
// CC-FPR and TDMA points that agree on every other axis run bit-identical
// connection sets -- the paired-comparison methodology of E6.  It
// likewise EXCLUDES the fault axes (ber and data_ber): points along a
// BER sweep run the same workload, and the fault injector keys its own
// draws on a separate stream family, so changing either BER can never
// reshuffle the workload.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "net/config.hpp"

namespace ccredf::sweep {

enum class Protocol { kCcrEdf, kCcFpr, kTdma };

/// Workload shape run at a grid point.
enum class WorkloadMix {
  /// Admission-controlled periodic connections only.
  kPeriodic,
  /// Periodic connections plus a Poisson best-effort background at
  /// GridSpec::background_rate per node.
  kMixed,
  /// No connections; every node saturated with Poisson best-effort
  /// traffic (the §5 analysis mode, used by E4c).
  kSaturation,
};

/// Service-class population run beside the RT set at a grid point
/// (the `services` axis; default rt-only keeps legacy grids' point
/// numbering and shard seeds untouched).
enum class ServiceMix {
  /// Hard-RT connections only (plus whatever WorkloadMix adds).
  kRtOnly,
  /// Plus GridSpec::cbs_flows CBS servers carrying aperiodic jobs at
  /// GridSpec::cbs_rate per flow.
  kCbs,
  /// Same servers, arrivals at GridSpec::cbs_saturation_rate -- offered
  /// load far above the reserved bandwidth, so every server runs
  /// backlogged and postponing (the E21 saturation scenario).
  kCbsSaturated,
};

[[nodiscard]] const char* protocol_name(Protocol p);
[[nodiscard]] const char* mix_name(WorkloadMix m);
[[nodiscard]] const char* service_name(ServiceMix s);

/// Parses "ccr-edf" / "cc-fpr" / "tdma" (case-insensitive); returns false
/// on unknown names.
bool parse_protocol(const std::string& s, Protocol& out);
/// Parses "periodic" / "mixed" / "saturation".
bool parse_mix(const std::string& s, WorkloadMix& out);
/// Parses "rt-only" / "cbs" / "cbs-saturated".
bool parse_service(const std::string& s, ServiceMix& out);

/// One cell of the expanded grid.
struct GridPoint {
  std::size_t index = 0;  // position in expand() order
  Protocol protocol = Protocol::kCcrEdf;
  NodeId nodes = 8;
  /// Offered utilisation as a fraction of the ring's U_max (Eq. 6).
  /// Planner cells may exceed 1.0: the hypercycle planner admits past
  /// the per-slot ceiling through spatial reuse (validate() allows up
  /// to 8x, the ring's segment-packing limit).
  double utilisation = 0.5;
  /// Control-channel bit-error rate applied uniformly per link (fault
  /// axis); 0 disables injection entirely.
  double ber = 0.0;
  /// Data-channel (payload) bit-error rate per link; 0 disables.
  double data_ber = 0.0;
  /// Node-churn axis: mean up-dwell between repairs and the next
  /// failure, in slot extents (workload::ChurnParams::mean_up_slots);
  /// 0 disables churn entirely.  The churned node set, repair time and
  /// detection window are per-run scalars (GridSpec).
  double churn = 0.0;
  /// Severed-segment axis: number of hard link cuts applied at the
  /// per-run `cut_slot` instant (the HIGHEST-numbered links first, so a
  /// single cut severs link nodes-1 and the degraded anchor is node 0,
  /// the designated restarter); 0 disables link faults entirely.  Cuts
  /// are spliced after `cut_down_slots` slot extents.
  int link_cuts = 0;
  WorkloadMix mix = WorkloadMix::kPeriodic;
  /// Service-class population riding beside the RT set.
  ServiceMix service = ServiceMix::kRtOnly;
  /// Hypercycle-planner axis: NetworkConfig::planner for this cell's
  /// network (E23 compares planner on/off as paired cells).
  bool planner = false;
  /// Workload-set seed axis (distinct sets at identical load).
  std::uint64_t set_seed = 1;
};

struct GridSpec {
  std::vector<Protocol> protocols{Protocol::kCcrEdf};
  std::vector<NodeId> node_counts{8};
  std::vector<double> utilisations{0.5};
  /// Control-channel BER axis; the default single 0 keeps fault-free
  /// grids' point numbering and shard seeds untouched.
  std::vector<double> bers{0.0};
  /// Data-channel (payload) BER axis; same default-0 convention.
  std::vector<double> data_bers{0.0};
  /// Node-churn axis (mean up-dwell in slot extents; 0 = no churn).
  /// Default single 0 keeps legacy grids' numbering untouched, and the
  /// axis is EXCLUDED from workload_key like the fault axes: a churn
  /// sweep compares failure pressure on the SAME workload, and churn
  /// dwells draw from their own "churn"-tagged stream family.
  std::vector<double> churns{0.0};
  /// Severed-segment axis (hard link cuts per point; 0 = intact ring).
  /// Default single 0 keeps legacy grids' numbering untouched, and the
  /// axis is EXCLUDED from workload_key like the other fault axes: a
  /// link-fault sweep compares cut pressure on the SAME workload (the
  /// E24 containment gate pairs cut and cut-free cells).
  std::vector<int> link_cuts{0};
  std::vector<WorkloadMix> mixes{WorkloadMix::kPeriodic};
  /// Service-class axis; the default single rt-only keeps legacy grids'
  /// point numbering and shard seeds untouched.  EXCLUDED from
  /// workload_key: rt-only vs cbs points run the identical RT set, so a
  /// service sweep is a paired comparison (the E21 gate depends on it).
  std::vector<ServiceMix> services{ServiceMix::kRtOnly};
  /// Hypercycle-planner axis (E23); the default single `off` keeps
  /// legacy grids' point numbering and shard seeds untouched.  EXCLUDED
  /// from workload_key: planner-on and planner-off cells run the
  /// identical workload (the planner must change only the engine, never
  /// the offered traffic), so a planner sweep is a paired comparison --
  /// and wherever the plan is not in effect the statistics themselves
  /// must come out byte-identical.
  std::vector<bool> planners{false};
  std::vector<std::uint64_t> set_seeds{1};
  /// Independent repetitions per point (distinct RNG streams).
  int repetitions = 1;

  // -- per-run scenario parameters (shared by every point) ---------------
  std::int64_t slots = 5000;
  int connections_per_node = 2;
  std::int64_t min_period_slots = 20;
  std::int64_t max_period_slots = 2000;
  double multicast_fraction = 0.0;
  /// Poisson messages per slot-extent per node for kMixed / kSaturation.
  double background_rate = 0.2;
  double saturation_rate = 3.0;
  // -- CBS population (services axis, ignored on rt-only points) ---------
  /// Servers requested, sources round-robin from node 0.
  int cbs_flows = 8;
  /// Per-server budget Q / replenishment period T, in slots.
  std::int64_t cbs_budget_slots = 2;
  std::int64_t cbs_period_slots = 50;
  /// Aperiodic jobs per slot-extent per flow for the `cbs` service mix.
  double cbs_rate = 0.02;
  /// ... and for `cbs-saturated` (choose >> Q/T / mean job size so the
  /// servers run permanently backlogged).
  double cbs_saturation_rate = 0.5;
  // -- churn scenario (ignored on churn == 0 points) ---------------------
  /// Nodes subject to churn: the HIGHEST-numbered min(churn_nodes,
  /// nodes - 1) nodes of each point.  Node 0 (designated restarter and
  /// default admission node) never churns.
  int churn_nodes = 2;
  /// Mean repair time, in slot extents.
  double churn_down_slots = 500.0;
  /// services::ResilienceParams::detection_window_slots for the monitor
  /// attached to churned points.
  std::int64_t churn_detect_slots = 16;
  // -- severed-segment scenario (ignored on link_cuts == 0 points) -------
  /// Slot index at which every cut of a point lands (between slots: the
  /// injector schedules the events at that slot's nominal start).
  std::int64_t cut_slot = 500;
  /// Slots each cut stays severed before its splice is scheduled.
  std::int64_t cut_down_slots = 400;
  /// Per-node transmit-buffer cap in messages (NetworkConfig::
  /// max_queue_messages); 0 keeps the library default (unbounded).
  /// Saturated long-horizon grids MUST set this: an unbounded
  /// best-effort backlog grows without limit under sustained overload,
  /// and with it the per-insert cost of the sorted EDF queues.
  std::int64_t queue_cap = 0;
  double link_length_m = 10.0;
  std::int64_t slot_payload_bytes = 0;  // 0 => network default
  bool spatial_reuse = true;
  /// Enable the frame-integrity CRC extension on every point's network
  /// (NetworkConfig::with_frame_crc) -- fault grids flip this on so
  /// detection reflects the full guard strength.
  bool frame_crc = false;
  /// Enable the payload CRC-32 extension (NetworkConfig::with_payload_crc)
  /// on every point's network; implies the ack wire so the NACK bits have
  /// somewhere to ride.
  bool payload_crc = false;
  /// Enable the engine's O(1) idle fast-forward (NetworkConfig::
  /// fast_forward) on every point's network.  Deliberately a scalar, not
  /// an axis, and EXCLUDED from workload_key: the engine guarantees
  /// byte-identical statistics either way (DESIGN.md §8), so flipping it
  /// must never move a shard's seed.
  bool fast_forward = true;
  /// Root of every derived RNG stream in this sweep.
  std::uint64_t base_seed = 1;

  [[nodiscard]] std::size_t point_count() const;
  [[nodiscard]] std::size_t shard_count() const {
    return point_count() * static_cast<std::size_t>(repetitions);
  }
  /// Enumerates all points in canonical order.
  [[nodiscard]] std::vector<GridPoint> expand() const;

  /// Validates axis lists are non-empty and scalars are in range;
  /// returns an explanatory message on failure, empty string when valid.
  [[nodiscard]] std::string validate() const;
};

/// Stream key for the workload of `p` -- identical for points differing
/// only in protocol (see header comment).
[[nodiscard]] std::uint64_t workload_key(const GridPoint& p);

/// The derived seed for (point, repetition); what each shard hands to its
/// workload generators.
[[nodiscard]] std::uint64_t shard_seed(const GridSpec& spec,
                                       const GridPoint& p, int repetition);

/// Network construction parameters for a point (protocol factory wired).
[[nodiscard]] net::NetworkConfig make_network_config(const GridSpec& spec,
                                                     const GridPoint& p);

// -- grid files ----------------------------------------------------------
//
// Line-oriented `key = value[, value...]` format with '#' comments:
//
//   protocols     = ccr-edf, cc-fpr, tdma
//   nodes         = 4, 8, 16
//   utilisations  = 0.3, 0.5, 0.7, 0.85
//   bers          = 0, 1e-4, 1e-3
//   data_bers     = 0, 1e-5
//   churns        = 0, 25000
//   link_cuts     = 0, 1, 2
//   mixes         = periodic
//   planners      = off, on
//   seeds         = 1, 2
//   repetitions   = 3
//   slots         = 5000
//   frame_crc     = on
//   payload_crc   = on
//
// Unknown keys and malformed values are hard errors (a silently ignored
// axis would invalidate an experiment).

/// Parses grid-file text into `spec` (fields not mentioned keep their
/// defaults).  On error returns false and sets `error`.
bool parse_grid(const std::string& text, GridSpec& spec, std::string& error);

/// Reads and parses `path`; distinguishes I/O and syntax errors in
/// `error`.
bool load_grid_file(const std::string& path, GridSpec& spec,
                    std::string& error);

}  // namespace ccredf::sweep
