#include "sweep/report.hpp"

#include <fstream>
#include <ostream>
#include <sstream>

#include "analysis/json_writer.hpp"

namespace ccredf::sweep {

namespace {

void write_spec(analysis::JsonWriter& w, const GridSpec& spec) {
  w.key("grid").begin_object();
  w.key("protocols").begin_array();
  for (const Protocol p : spec.protocols) w.value(protocol_name(p));
  w.end_array();
  w.key("nodes").begin_array();
  for (const NodeId n : spec.node_counts) {
    w.value(static_cast<std::int64_t>(n));
  }
  w.end_array();
  w.key("utilisations").begin_array();
  for (const double u : spec.utilisations) w.value(u);
  w.end_array();
  w.key("bers").begin_array();
  for (const double b : spec.bers) w.value(b);
  w.end_array();
  w.key("data_bers").begin_array();
  for (const double b : spec.data_bers) w.value(b);
  w.end_array();
  w.key("churns").begin_array();
  for (const double c : spec.churns) w.value(c);
  w.end_array();
  w.key("link_cuts").begin_array();
  for (const int c : spec.link_cuts) w.value(static_cast<std::int64_t>(c));
  w.end_array();
  w.key("mixes").begin_array();
  for (const WorkloadMix m : spec.mixes) w.value(mix_name(m));
  w.end_array();
  w.key("services").begin_array();
  for (const ServiceMix s : spec.services) w.value(service_name(s));
  w.end_array();
  w.key("planners").begin_array();
  for (const bool p : spec.planners) w.value(p);
  w.end_array();
  w.key("seeds").begin_array();
  for (const std::uint64_t s : spec.set_seeds) w.value(s);
  w.end_array();
  w.key("repetitions").value(spec.repetitions);
  w.key("slots").value(spec.slots);
  w.key("connections_per_node").value(spec.connections_per_node);
  w.key("min_period_slots").value(spec.min_period_slots);
  w.key("max_period_slots").value(spec.max_period_slots);
  w.key("multicast_fraction").value(spec.multicast_fraction);
  w.key("background_rate").value(spec.background_rate);
  w.key("saturation_rate").value(spec.saturation_rate);
  w.key("cbs_flows").value(spec.cbs_flows);
  w.key("cbs_budget_slots").value(spec.cbs_budget_slots);
  w.key("cbs_period_slots").value(spec.cbs_period_slots);
  w.key("cbs_rate").value(spec.cbs_rate);
  w.key("cbs_saturation_rate").value(spec.cbs_saturation_rate);
  w.key("churn_nodes").value(spec.churn_nodes);
  w.key("churn_down_slots").value(spec.churn_down_slots);
  w.key("churn_detect_slots").value(spec.churn_detect_slots);
  w.key("cut_slot").value(spec.cut_slot);
  w.key("cut_down_slots").value(spec.cut_down_slots);
  w.key("queue_cap").value(spec.queue_cap);
  w.key("link_length_m").value(spec.link_length_m);
  w.key("payload_bytes").value(spec.slot_payload_bytes);
  w.key("spatial_reuse").value(spec.spatial_reuse);
  w.key("frame_crc").value(spec.frame_crc);
  w.key("payload_crc").value(spec.payload_crc);
  // GridSpec::fast_forward is deliberately NOT serialized: the engine
  // guarantees identical statistics either way, and `cmp` between a
  // fast-forward and a --no-fast-forward report of the same grid is the
  // regression gate that proves it (scripts/check.sh).
  w.key("base_seed").value(spec.base_seed);
  w.end_object();
}

void write_point(analysis::JsonWriter& w, const PointResult& pr) {
  w.begin_object();
  w.key("protocol").value(protocol_name(pr.point.protocol));
  w.key("nodes").value(static_cast<std::int64_t>(pr.point.nodes));
  w.key("utilisation").value(pr.point.utilisation);
  w.key("ber").value(pr.point.ber);
  w.key("data_ber").value(pr.point.data_ber);
  w.key("churn").value(pr.point.churn);
  w.key("link_cuts").value(static_cast<std::int64_t>(pr.point.link_cuts));
  w.key("mix").value(mix_name(pr.point.mix));
  w.key("service").value(service_name(pr.point.service));
  w.key("planner").value(pr.point.planner);
  w.key("set_seed").value(pr.point.set_seed);
  w.key("failed_shards").value(pr.failed_shards);
  w.key("metrics").begin_object();
  for (std::size_t i = 0; i < kMetricCount; ++i) {
    const sim::OnlineStats& st = pr.metrics[i];
    w.key(metric_name(static_cast<Metric>(i))).begin_object();
    w.key("count").value(st.count());
    w.key("mean").value(st.mean());
    w.key("stddev").value(st.stddev());
    w.key("min").value(st.min());
    w.key("max").value(st.max());
    w.end_object();
  }
  w.end_object();
  w.end_object();
}

}  // namespace

void write_json(const SweepResult& result, std::ostream& os) {
  analysis::JsonWriter w(os);
  w.begin_object();
  w.key("report").value("ccredf-sweep");
  write_spec(w, result.spec);
  w.key("shards").value(result.shards);
  w.key("failed_shards").value(result.failed_shards);
  w.key("points").begin_array();
  for (const PointResult& pr : result.points) write_point(w, pr);
  w.end_array();
  w.end_object();
  os << '\n';
}

std::string to_json(const SweepResult& result) {
  std::ostringstream os;
  write_json(result, os);
  return os.str();
}

bool write_json_file(const SweepResult& result, const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  write_json(result, out);
  return static_cast<bool>(out);
}

analysis::Table to_table(const SweepResult& result,
                         const std::vector<Metric>& metrics,
                         const std::string& title) {
  analysis::Table t(title);
  std::vector<std::string> headers{"protocol", "nodes",   "u/U_max", "ber",
                                   "data_ber", "churn",   "mix",     "service",
                                   "planner",  "seed"};
  for (const Metric m : metrics) headers.emplace_back(metric_name(m));
  t.columns(std::move(headers));
  for (const PointResult& pr : result.points) {
    auto row = t.row();
    row.cell(protocol_name(pr.point.protocol))
        .cell(static_cast<std::int64_t>(pr.point.nodes))
        .cell(pr.point.utilisation, 2)
        .cell(pr.point.ber, 6)
        .cell(pr.point.data_ber, 6)
        .cell(pr.point.churn, 0)
        .cell(mix_name(pr.point.mix))
        .cell(service_name(pr.point.service))
        .cell(pr.point.planner ? "on" : "off")
        .cell(static_cast<std::int64_t>(pr.point.set_seed));
    for (const Metric m : metrics) row.cell(pr.mean(m), 4);
  }
  return t;
}

}  // namespace ccredf::sweep
