// Serialization of sweep results.
//
// to_json() is the determinism boundary: it echoes the grid, then one
// object per point in canonical order with {count, mean, stddev, min,
// max} per metric, all numbers rendered by analysis::json_number
// (shortest round-trip).  Two sweeps of the same grid produce
// byte-identical documents regardless of worker-thread count.
// Wall-clock timing deliberately never appears here.
#pragma once

#include <iosfwd>
#include <string>

#include "analysis/report.hpp"
#include "sweep/runner.hpp"

namespace ccredf::sweep {

/// Writes the aggregated report as a single-line JSON document + '\n'.
void write_json(const SweepResult& result, std::ostream& os);

[[nodiscard]] std::string to_json(const SweepResult& result);

/// Writes to_json() to `path`; returns false on I/O failure.
bool write_json_file(const SweepResult& result, const std::string& path);

/// Human-readable rendering: one row per point, mean of each metric in
/// `metrics` (report order preserved).
[[nodiscard]] analysis::Table to_table(const SweepResult& result,
                                       const std::vector<Metric>& metrics,
                                       const std::string& title);

}  // namespace ccredf::sweep
