#include "sweep/runner.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>
#include <optional>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "fault/injector.hpp"
#include "net/network.hpp"
#include "ring/segment.hpp"
#include "services/cbs.hpp"
#include "services/resilience.hpp"
#include "workload/aperiodic.hpp"
#include "workload/churn.hpp"
#include "workload/periodic.hpp"
#include "workload/poisson.hpp"

namespace ccredf::sweep {

const char* metric_name(Metric m) {
  switch (m) {
    case Metric::kUMax:
      return "u_max";
    case Metric::kAdmittedFraction:
      return "admitted_fraction";
    case Metric::kRtDelivered:
      return "rt_delivered";
    case Metric::kSchedMissRatio:
      return "sched_miss_ratio";
    case Metric::kUserMissRatio:
      return "user_miss_ratio";
    case Metric::kUserMisses:
      return "user_misses";
    case Metric::kInversions:
      return "inversions";
    case Metric::kMeanLatencyUs:
      return "mean_latency_us";
    case Metric::kSlotFraction:
      return "slot_fraction";
    case Metric::kGoodputBps:
      return "goodput_bps";
    case Metric::kGrantsPerBusySlot:
      return "grants_per_busy_slot";
    case Metric::kRecoveries:
      return "recoveries";
    case Metric::kRecoveryUs:
      return "recovery_us";
    case Metric::kFaultsDetected:
      return "faults_detected";
    case Metric::kFaultsSilent:
      return "faults_silent";
    case Metric::kPayloadCorruptions:
      return "payload_corruptions";
    case Metric::kPayloadDetected:
      return "payload_detected";
    case Metric::kPayloadUndetected:
      return "payload_undetected";
    case Metric::kPayloadNacks:
      return "payload_nacks";
    case Metric::kCbsAdmittedFraction:
      return "cbs_admitted_fraction";
    case Metric::kCbsDelivered:
      return "cbs_delivered";
    case Metric::kCbsPostponements:
      return "cbs_postponements";
    case Metric::kCbsJain:
      return "cbs_jain";
    case Metric::kRecoveryGapP50Us:
      return "recovery_gap_p50_us";
    case Metric::kRecoveryGapP99Us:
      return "recovery_gap_p99_us";
    case Metric::kChurnDowns:
      return "churn_downs";
    case Metric::kChurnDetectLatency:
      return "churn_detect_latency_slots";
    case Metric::kChurnReclaimedU:
      return "churn_reclaimed_u";
    case Metric::kChurnReadmitFraction:
      return "churn_readmit_fraction";
    case Metric::kChurnDisjointMisses:
      return "churn_disjoint_misses";
    case Metric::kPlannedSlotFraction:
      return "planned_slot_fraction";
    case Metric::kPlanBuilds:
      return "plan_builds";
    case Metric::kPlanDivergences:
      return "plan_divergences";
    case Metric::kLinkCuts:
      return "link_cuts";
    case Metric::kSegmentQuarantines:
      return "segment_quarantines";
    case Metric::kCutDetectSlots:
      return "cut_detect_slots";
    case Metric::kCutDisjointMisses:
      return "cut_disjoint_misses";
  }
  return "?";
}

namespace {

/// Per-worker allocation pool: buffers that every shard needs but none
/// may share concurrently.  One instance lives on each worker thread's
/// stack, so a grid of S shards on W workers performs O(W) workload-set
/// allocations instead of O(S).  Shard RESULTS never touch the scratch;
/// reuse cannot leak state between shards (the set is rebuilt from the
/// shard seed each time).
struct ShardScratch {
  workload::PeriodicScratch periodic;
  std::vector<core::ConnectionParams> set;
};

ShardMetrics run_shard_impl(const GridSpec& spec, const GridPoint& point,
                            int repetition, ShardScratch& scratch) {
  net::Network n(make_network_config(spec, point));
  const std::uint64_t seed = shard_seed(spec, point, repetition);

  // Fault axis: the injector derives its own stream family from the
  // shard seed, so the workload below is byte-identical at every BER.
  std::optional<fault::FaultInjector> injector;
  if (point.ber > 0.0 || point.data_ber > 0.0 || point.churn > 0.0 ||
      point.link_cuts > 0) {
    injector.emplace(n, seed);
    if (point.ber > 0.0) injector->set_control_ber(point.ber);
    if (point.data_ber > 0.0) injector->set_data_ber(point.data_ber);
  }

  // Churn axis: the HIGHEST-numbered nodes churn -- node 0 (designated
  // restarter and admission node) must survive -- and the resilience
  // monitor closes the detection -> reclamation -> re-admission loop.
  // Link-cut points attach the same monitor: it carries the
  // segment-down quarantine and the splice-staged re-admission.
  NodeSet churned;
  std::optional<services::ResilienceMonitor> monitor;
  if (point.churn > 0.0 || point.link_cuts > 0) {
    if (point.churn > 0.0) {
      const int cnt = std::min<int>(spec.churn_nodes,
                                    static_cast<int>(point.nodes) - 1);
      for (int j = static_cast<int>(point.nodes) - cnt;
           j < static_cast<int>(point.nodes); ++j) {
        churned.insert(static_cast<NodeId>(j));
      }
    }
    services::ResilienceParams rp;
    rp.detection_window_slots = spec.churn_detect_slots;
    monitor.emplace(n, rp);
  }

  // Severed-segment axis: cut the HIGHEST-numbered links -- a single
  // cut severs link nodes-1 (node nodes-1 -> node 0), so the degraded
  // anchor is node 0, the designated restarter -- at the nominal start
  // of `cut_slot`, and splice them `cut_down_slots` extents later.  The
  // instants are deterministic scalars: no draw, no stream.
  LinkSet cut_links;
  if (point.link_cuts > 0) {
    const sim::Duration extent = n.timing().slot_plus_max_gap();
    const sim::TimePoint cut_at =
        sim::TimePoint::origin() + extent * spec.cut_slot;
    const sim::TimePoint splice_at =
        cut_at + extent * spec.cut_down_slots;
    for (int i = 0; i < point.link_cuts; ++i) {
      const LinkId l = static_cast<LinkId>(
          static_cast<int>(point.nodes) - 1 - i);
      cut_links.insert(l);
      injector->schedule_link_cut(l, cut_at);
      injector->schedule_link_splice(l, splice_at);
    }
  }

  int requested = 0;
  int admitted = 0;
  // Connections touching NO churned node (neither source nor any
  // destination): the E22 containment gate demands zero user misses on
  // exactly these.
  std::vector<ConnectionId> disjoint;
  // Connections whose transmission segment avoids EVERY cut link: the
  // E24 containment gate demands zero user misses on exactly these.
  std::vector<ConnectionId> cut_disjoint;
  if (point.mix != WorkloadMix::kSaturation) {
    workload::PeriodicSetParams wp;
    wp.nodes = point.nodes;
    wp.connections =
        spec.connections_per_node * static_cast<int>(point.nodes);
    wp.total_utilisation = point.utilisation * n.timing().u_max();
    wp.min_period_slots = spec.min_period_slots;
    wp.max_period_slots = spec.max_period_slots;
    wp.multicast_fraction = spec.multicast_fraction;
    wp.seed = seed;
    workload::make_periodic_set(wp, scratch.periodic, scratch.set);
    requested = static_cast<int>(scratch.set.size());
    for (const auto& c : scratch.set) {
      const net::Network::OpenResult r = n.open_connection(c);
      if (!r.admitted) continue;
      ++admitted;
      if (point.churn > 0.0 && !churned.contains(c.source) &&
          !c.dests.intersects(churned)) {
        disjoint.push_back(r.id);
      }
      if (point.link_cuts > 0 &&
          !ring::Segment::for_transmission(n.topology(), c.source, c.dests)
               .links()
               .intersects(cut_links)) {
        cut_disjoint.push_back(r.id);
      }
    }
  }

  // Background / saturation traffic keeps its own derived stream so the
  // periodic set is untouched by the mix axis' Poisson draws.
  std::optional<workload::PoissonGenerator> background;
  if (point.mix != WorkloadMix::kPeriodic) {
    workload::PoissonParams pp;
    pp.rate_per_node = point.mix == WorkloadMix::kSaturation
                           ? spec.saturation_rate
                           : spec.background_rate;
    pp.seed = sim::Rng::stream_seed(seed, 0x6261636Bull /* "back" */, 0);
    if (point.mix == WorkloadMix::kSaturation) {
      pp.min_laxity_slots = 100;
      pp.max_laxity_slots = 2000;
    }
    background.emplace(n, pp,
                       sim::TimePoint::origin() +
                           n.timing().slot() * spec.slots);
  }

  // Service axis: a CBS population beside the RT set.  The aperiodic
  // arrivals draw from their own "cbs"-tagged stream family, so rt-only
  // and cbs points run byte-identical RT workloads (workload_key).
  std::optional<services::CbsFlowSet> cbs_flows;
  std::optional<workload::AperiodicGenerator> cbs_gen;
  if (point.service != ServiceMix::kRtOnly) {
    services::CbsFlowSetParams cp;
    cp.flows = spec.cbs_flows;
    cp.budget_slots = spec.cbs_budget_slots;
    cp.period_slots = spec.cbs_period_slots;
    cbs_flows.emplace(n, cp);
    workload::AperiodicParams ap;
    ap.rate_per_flow = point.service == ServiceMix::kCbsSaturated
                           ? spec.cbs_saturation_rate
                           : spec.cbs_rate;
    ap.seed = sim::Rng::stream_seed(seed, 0x636273ull /* "cbs" */, 0);
    cbs_gen.emplace(n, cbs_flows->ids(), ap,
                    sim::TimePoint::origin() +
                        n.timing().slot() * spec.slots);
  }

  // The churn schedule itself: pre-computed fail/restore renewals on the
  // "churn"-tagged stream family, independent of every other axis.
  std::optional<workload::ChurnProcess> churn_proc;
  if (point.churn > 0.0) {
    workload::ChurnParams chp;
    chp.nodes = churned;
    chp.mean_up_slots = point.churn;
    chp.mean_down_slots = spec.churn_down_slots;
    chp.seed = sim::Rng::stream_seed(seed, 0x636875726Eull /* "churn" */, 0);
    churn_proc.emplace(n, *injector, chp,
                       sim::TimePoint::origin() +
                           n.timing().slot() * spec.slots);
  }

  n.run_slots(spec.slots);

  const auto& rt = n.stats().cls(core::TrafficClass::kRealTime);
  ShardMetrics m;
  m[Metric::kUMax] = n.timing().u_max();
  m[Metric::kAdmittedFraction] =
      requested == 0 ? 0.0
                     : static_cast<double>(admitted) /
                           static_cast<double>(requested);
  m[Metric::kRtDelivered] = static_cast<double>(rt.delivered);
  m[Metric::kSchedMissRatio] = rt.scheduling_miss_ratio();
  m[Metric::kUserMissRatio] = rt.user_miss_ratio();
  m[Metric::kUserMisses] = static_cast<double>(rt.user_misses);
  m[Metric::kInversions] =
      static_cast<double>(n.stats().priority_inversions);
  m[Metric::kMeanLatencyUs] = rt.latency.mean() / 1e6;
  m[Metric::kSlotFraction] = n.stats().slot_time_fraction();
  m[Metric::kGoodputBps] = n.stats().goodput_bps();
  m[Metric::kGrantsPerBusySlot] = n.stats().mean_grants_per_busy_slot();
  m[Metric::kRecoveries] = static_cast<double>(n.recoveries());
  m[Metric::kRecoveryUs] = n.recovery_time().us();
  m[Metric::kFaultsDetected] =
      static_cast<double>(n.stats().faults.detected());
  m[Metric::kFaultsSilent] = static_cast<double>(n.stats().faults.silent());
  m[Metric::kPayloadCorruptions] =
      static_cast<double>(n.stats().faults.payload_corruptions);
  m[Metric::kPayloadDetected] =
      static_cast<double>(n.stats().faults.payload_detected);
  m[Metric::kPayloadUndetected] =
      static_cast<double>(n.stats().faults.payload_undetected);
  m[Metric::kPayloadNacks] =
      static_cast<double>(n.stats().faults.payload_nacks);
  if (cbs_flows.has_value()) {
    m[Metric::kCbsAdmittedFraction] =
        static_cast<double>(cbs_flows->admitted()) /
        static_cast<double>(cbs_flows->admitted() + cbs_flows->rejected());
    std::int64_t jobs_delivered = 0;
    for (const ConnectionId id : cbs_flows->ids()) {
      jobs_delivered += n.connection_stats(id).delivered;
    }
    m[Metric::kCbsDelivered] = static_cast<double>(jobs_delivered);
    m[Metric::kCbsPostponements] =
        static_cast<double>(n.stats().cbs.postponements);
    m[Metric::kCbsJain] = cbs_flows->jain_index();
  }
  // Exact nearest-rank quantiles (ps -> us); 0 when no recovery happened.
  m[Metric::kRecoveryGapP50Us] =
      static_cast<double>(
          n.stats().faults.recovery_gap_quantiles.quantile(0.5)) /
      1e6;
  m[Metric::kRecoveryGapP99Us] =
      static_cast<double>(
          n.stats().faults.recovery_gap_quantiles.quantile(0.99)) /
      1e6;
  if (monitor.has_value()) {
    const services::ResilienceStats& rs = monitor->stats();
    m[Metric::kChurnDowns] = static_cast<double>(rs.downs);
    m[Metric::kChurnDetectLatency] = rs.detection_latency_slots.mean();
    m[Metric::kChurnReclaimedU] = rs.weight_reclaimed;
    m[Metric::kChurnReadmitFraction] =
        rs.readmit_attempts == 0
            ? 0.0
            : static_cast<double>(rs.readmissions) /
                  static_cast<double>(rs.readmit_attempts);
    std::int64_t disjoint_misses = 0;
    for (const ConnectionId id : disjoint) {
      disjoint_misses += n.connection_stats(id).user_misses;
    }
    m[Metric::kChurnDisjointMisses] = static_cast<double>(disjoint_misses);
  }
  m[Metric::kPlannedSlotFraction] = n.stats().planned_slot_fraction();
  m[Metric::kPlanBuilds] = static_cast<double>(n.stats().plan_builds);
  m[Metric::kPlanDivergences] =
      static_cast<double>(n.stats().plan_divergences);
  if (point.link_cuts > 0) {
    m[Metric::kLinkCuts] = static_cast<double>(n.stats().faults.link_cuts);
    m[Metric::kSegmentQuarantines] =
        static_cast<double>(n.stats().faults.segment_quarantines);
    m[Metric::kCutDetectSlots] =
        static_cast<double>(n.stats().faults.cut_detect_slots);
    std::int64_t cut_disjoint_misses = 0;
    for (const ConnectionId id : cut_disjoint) {
      cut_disjoint_misses += n.connection_stats(id).user_misses;
    }
    m[Metric::kCutDisjointMisses] =
        static_cast<double>(cut_disjoint_misses);
  }
  m.ok = true;
  return m;
}

ShardMetrics run_shard_guarded(const GridSpec& spec, const GridPoint& point,
                               int repetition, ShardScratch& scratch) {
  try {
    return run_shard_impl(spec, point, repetition, scratch);
  } catch (const std::exception&) {
    return ShardMetrics{};  // ok == false
  }
}

}  // namespace

ShardMetrics run_shard(const GridSpec& spec, const GridPoint& point,
                       int repetition) {
  ShardScratch scratch;
  return run_shard_guarded(spec, point, repetition, scratch);
}

SweepResult run_sweep(const GridSpec& spec, const RunOptions& opts) {
  CCREDF_EXPECT(spec.validate().empty(), "run_sweep: invalid grid spec");
  const auto t0 = std::chrono::steady_clock::now();

  const std::vector<GridPoint> points = spec.expand();
  const auto reps = static_cast<std::size_t>(spec.repetitions);
  const std::size_t shards = points.size() * reps;
  std::vector<ShardMetrics> shard_results(shards);

  int threads = opts.threads;
  if (threads <= 0) {
    threads = static_cast<int>(std::thread::hardware_concurrency());
    if (threads <= 0) threads = 1;
  }
  threads = static_cast<int>(
      std::min<std::size_t>(static_cast<std::size_t>(threads), shards));

  // Dynamic claiming balances the load (a 64-node shard costs far more
  // than a 4-node one); result slots are indexed by shard id so the
  // claiming order leaves no trace in the output.
  std::atomic<std::size_t> next{0};
  const auto worker = [&] {
    ShardScratch scratch;  // pooled across every shard this worker claims
    for (;;) {
      const std::size_t s = next.fetch_add(1, std::memory_order_relaxed);
      if (s >= shards) return;
      shard_results[s] = run_shard_guarded(spec, points[s / reps],
                                           static_cast<int>(s % reps),
                                           scratch);
    }
  };
  if (threads <= 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(threads));
    for (int t = 0; t < threads; ++t) pool.emplace_back(worker);
    for (auto& th : pool) th.join();
  }

  // Serial fold in canonical shard order: OnlineStats accumulation is
  // order-sensitive in the last floating-point bits, so the fold order is
  // pinned here, once, for every thread count.
  SweepResult result;
  result.spec = spec;
  result.shards = static_cast<std::int64_t>(shards);
  result.points.reserve(points.size());
  for (std::size_t p = 0; p < points.size(); ++p) {
    PointResult pr;
    pr.point = points[p];
    for (std::size_t r = 0; r < reps; ++r) {
      const ShardMetrics& sm = shard_results[p * reps + r];
      if (!sm.ok) {
        ++pr.failed_shards;
        ++result.failed_shards;
        continue;
      }
      for (std::size_t i = 0; i < kMetricCount; ++i) {
        pr.metrics[i].add(sm.values[i]);
      }
    }
    result.points.push_back(std::move(pr));
  }

  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return result;
}

}  // namespace ccredf::sweep
