#include "sweep/grid.hpp"

#include <algorithm>
#include <bit>
#include <cctype>
#include <fstream>
#include <sstream>

#include "baseline/ccfpr.hpp"
#include "baseline/tdma.hpp"
#include "common/error.hpp"
#include "sim/rng.hpp"

namespace ccredf::sweep {

const char* protocol_name(Protocol p) {
  switch (p) {
    case Protocol::kCcrEdf:
      return "CCR-EDF";
    case Protocol::kCcFpr:
      return "CC-FPR";
    case Protocol::kTdma:
      return "TDMA";
  }
  return "?";
}

const char* mix_name(WorkloadMix m) {
  switch (m) {
    case WorkloadMix::kPeriodic:
      return "periodic";
    case WorkloadMix::kMixed:
      return "mixed";
    case WorkloadMix::kSaturation:
      return "saturation";
  }
  return "?";
}

const char* service_name(ServiceMix s) {
  switch (s) {
    case ServiceMix::kRtOnly:
      return "rt-only";
    case ServiceMix::kCbs:
      return "cbs";
    case ServiceMix::kCbsSaturated:
      return "cbs-saturated";
  }
  return "?";
}

namespace {

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return s;
}

}  // namespace

bool parse_protocol(const std::string& s, Protocol& out) {
  const std::string l = lower(s);
  if (l == "ccr-edf" || l == "ccredf" || l == "edf") {
    out = Protocol::kCcrEdf;
  } else if (l == "cc-fpr" || l == "ccfpr" || l == "fpr") {
    out = Protocol::kCcFpr;
  } else if (l == "tdma") {
    out = Protocol::kTdma;
  } else {
    return false;
  }
  return true;
}

bool parse_mix(const std::string& s, WorkloadMix& out) {
  const std::string l = lower(s);
  if (l == "periodic") {
    out = WorkloadMix::kPeriodic;
  } else if (l == "mixed") {
    out = WorkloadMix::kMixed;
  } else if (l == "saturation") {
    out = WorkloadMix::kSaturation;
  } else {
    return false;
  }
  return true;
}

bool parse_service(const std::string& s, ServiceMix& out) {
  const std::string l = lower(s);
  if (l == "rt-only" || l == "rtonly" || l == "rt") {
    out = ServiceMix::kRtOnly;
  } else if (l == "cbs") {
    out = ServiceMix::kCbs;
  } else if (l == "cbs-saturated" || l == "cbssaturated") {
    out = ServiceMix::kCbsSaturated;
  } else {
    return false;
  }
  return true;
}

std::size_t GridSpec::point_count() const {
  return protocols.size() * node_counts.size() * utilisations.size() *
         bers.size() * data_bers.size() * churns.size() *
         link_cuts.size() * mixes.size() * services.size() *
         planners.size() * set_seeds.size();
}

std::vector<GridPoint> GridSpec::expand() const {
  std::vector<GridPoint> points;
  points.reserve(point_count());
  std::size_t index = 0;
  for (const Protocol proto : protocols) {
    for (const NodeId nodes : node_counts) {
      for (const double u : utilisations) {
        for (const double ber : bers) {
          for (const double data_ber : data_bers) {
            for (const double churn : churns) {
              for (const int cuts : link_cuts) {
                for (const WorkloadMix mix : mixes) {
                  for (const ServiceMix service : services) {
                    for (const bool planner : planners) {
                      for (const std::uint64_t seed : set_seeds) {
                        GridPoint p;
                        p.index = index++;
                        p.protocol = proto;
                        p.nodes = nodes;
                        p.utilisation = u;
                        p.ber = ber;
                        p.data_ber = data_ber;
                        p.churn = churn;
                        p.link_cuts = cuts;
                        p.mix = mix;
                        p.service = service;
                        p.planner = planner;
                        p.set_seed = seed;
                        points.push_back(p);
                      }
                    }
                  }
                }
              }
            }
          }
        }
      }
    }
  }
  return points;
}

std::string GridSpec::validate() const {
  if (protocols.empty()) return "protocols axis is empty";
  if (node_counts.empty()) return "nodes axis is empty";
  if (utilisations.empty()) return "utilisations axis is empty";
  if (mixes.empty()) return "mixes axis is empty";
  if (set_seeds.empty()) return "seeds axis is empty";
  for (const NodeId n : node_counts) {
    if (n < 2 || n > kMaxNodes) return "node count out of [2, 64]";
  }
  for (const double u : utilisations) {
    // Past-1.0 fractions are meaningful only for planner cells (the
    // hypercycle planner admits past U_max through spatial reuse); 8x
    // is the hard packing ceiling of the ring's unit segments.
    if (!(u > 0.0) || u > 8.0) return "utilisation fraction out of (0, 8]";
  }
  if (bers.empty()) return "bers axis is empty";
  for (const double b : bers) {
    if (!(b >= 0.0) || b >= 1.0) return "ber out of [0, 1)";
  }
  if (data_bers.empty()) return "data_bers axis is empty";
  for (const double b : data_bers) {
    if (!(b >= 0.0) || b >= 1.0) return "data_ber out of [0, 1)";
  }
  if (churns.empty()) return "churns axis is empty";
  for (const double c : churns) {
    if (!(c >= 0.0)) return "churn mean up-dwell must be >= 0";
  }
  if (link_cuts.empty()) return "link_cuts axis is empty";
  for (const int c : link_cuts) {
    if (c < 0) return "link_cuts must be >= 0";
    // A point cannot cut more links than the smallest ring has.
    for (const NodeId n : node_counts) {
      if (c >= static_cast<int>(n)) {
        return "link_cuts must be < the smallest node count";
      }
    }
  }
  if (cut_slot < 0) return "cut_slot must be >= 0";
  if (cut_down_slots < 1) return "cut_down_slots must be >= 1";
  if (planners.empty()) return "planners axis is empty";
  if (churn_nodes < 1) return "churn_nodes must be >= 1";
  if (!(churn_down_slots > 0.0)) return "churn_down_slots must be > 0";
  if (churn_detect_slots < 2) return "churn_detect_slots must be >= 2";
  if (repetitions < 1) return "repetitions must be >= 1";
  if (slots < 1) return "slots must be >= 1";
  if (connections_per_node < 1) return "connections_per_node must be >= 1";
  if (min_period_slots < 1 || max_period_slots < min_period_slots) {
    return "period range must satisfy 1 <= min <= max";
  }
  if (multicast_fraction < 0.0 || multicast_fraction > 1.0) {
    return "multicast_fraction out of [0, 1]";
  }
  if (!(background_rate >= 0.0)) return "background_rate must be >= 0";
  if (!(saturation_rate > 0.0)) return "saturation_rate must be > 0";
  if (services.empty()) return "services axis is empty";
  if (cbs_flows < 1) return "cbs_flows must be >= 1";
  if (cbs_budget_slots < 1 || cbs_period_slots < cbs_budget_slots) {
    return "cbs budget/period must satisfy 1 <= Q <= T";
  }
  if (!(cbs_rate > 0.0)) return "cbs_rate must be > 0";
  if (!(cbs_saturation_rate > 0.0)) return "cbs_saturation_rate must be > 0";
  if (queue_cap < 0) return "queue_cap must be >= 0";
  if (!(link_length_m > 0.0)) return "link_length_m must be > 0";
  if (slot_payload_bytes < 0) return "payload_bytes must be >= 0";
  return "";
}

std::uint64_t workload_key(const GridPoint& p) {
  // Protocol intentionally excluded (paired comparisons across
  // protocols), and so are ber and data_ber: a BER sweep compares fault
  // levels on the SAME workload, and the injector's draws live in their
  // own stream family keyed off the shard seed.  The service axis is
  // excluded for the same reason: rt-only and cbs points must run the
  // identical RT connection set (the E21 isolation gate), and the CBS
  // arrival process draws from its own "cbs"-tagged stream family.
  // The churn axis is excluded likewise: churned and churn-free points
  // run the identical workload (the E22 containment gate compares
  // disjoint connections across churn levels), with dwells drawn from
  // the "churn"-tagged stream family.  The link_cuts axis is excluded
  // for the same reason: the E24 containment gate compares cut-disjoint
  // connections between cut and cut-free cells of the SAME workload,
  // and the cut/splice instants are deterministic scalars, not draws.  The planner axis is excluded
  // too: planner-on and planner-off cells must offer the identical
  // traffic so the E23 gates compare engines, not workloads.
  std::uint64_t k = sim::Rng::stream_seed(p.set_seed, p.nodes,
                                          std::bit_cast<std::uint64_t>(
                                              p.utilisation));
  k = sim::Rng::stream_seed(k, static_cast<std::uint64_t>(p.mix), 0);
  return k;
}

std::uint64_t shard_seed(const GridSpec& spec, const GridPoint& p,
                         int repetition) {
  return sim::Rng::stream_seed(spec.base_seed, workload_key(p),
                               static_cast<std::uint64_t>(repetition));
}

net::NetworkConfig make_network_config(const GridSpec& spec,
                                       const GridPoint& p) {
  net::NetworkConfig cfg;
  cfg.nodes = p.nodes;
  cfg.link_length_m = spec.link_length_m;
  cfg.slot_payload_bytes = spec.slot_payload_bytes;
  cfg.spatial_reuse = spec.spatial_reuse;
  cfg.with_frame_crc = spec.frame_crc;
  cfg.with_payload_crc = spec.payload_crc;
  // The NACK bits ride the ack field, so the payload CRC implies acks.
  if (spec.payload_crc) cfg.with_acks = true;
  // Long sweeps must stay allocation-free and memory-bounded.
  cfg.record_inboxes = false;
  cfg.max_queue_messages = static_cast<std::size_t>(spec.queue_cap);
  cfg.fast_forward = spec.fast_forward;
  cfg.planner = p.planner;
  switch (p.protocol) {
    case Protocol::kCcrEdf:
      break;  // default factory
    case Protocol::kCcFpr:
      cfg.protocol_factory = baseline::ccfpr_factory();
      break;
    case Protocol::kTdma:
      cfg.protocol_factory = baseline::tdma_factory();
      break;
  }
  return cfg;
}

// -- grid-file parsing ---------------------------------------------------

namespace {

std::string trim(const std::string& s) {
  const auto b = s.find_first_not_of(" \t\r");
  if (b == std::string::npos) return "";
  const auto e = s.find_last_not_of(" \t\r");
  return s.substr(b, e - b + 1);
}

std::vector<std::string> split_list(const std::string& s) {
  std::vector<std::string> items;
  std::stringstream ss(s);
  std::string item;
  while (std::getline(ss, item, ',')) {
    item = trim(item);
    if (!item.empty()) items.push_back(item);
  }
  return items;
}

bool parse_i64(const std::string& s, std::int64_t& out) {
  try {
    std::size_t pos = 0;
    out = std::stoll(s, &pos);
    return pos == s.size();
  } catch (...) {
    return false;
  }
}

bool parse_u64(const std::string& s, std::uint64_t& out) {
  try {
    std::size_t pos = 0;
    out = std::stoull(s, &pos);
    return pos == s.size();
  } catch (...) {
    return false;
  }
}

bool parse_f64(const std::string& s, double& out) {
  try {
    std::size_t pos = 0;
    out = std::stod(s, &pos);
    return pos == s.size();
  } catch (...) {
    return false;
  }
}

bool parse_flag(const std::string& s, bool& out) {
  const std::string l = lower(s);
  if (l == "true" || l == "on" || l == "1") {
    out = true;
  } else if (l == "false" || l == "off" || l == "0") {
    out = false;
  } else {
    return false;
  }
  return true;
}

}  // namespace

bool parse_grid(const std::string& text, GridSpec& spec,
                std::string& error) {
  GridSpec out = spec;
  std::stringstream ss(text);
  std::string line;
  int lineno = 0;
  const auto fail = [&](const std::string& what) {
    std::ostringstream os;
    os << "line " << lineno << ": " << what;
    error = os.str();
    return false;
  };
  while (std::getline(ss, line)) {
    ++lineno;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    line = trim(line);
    if (line.empty()) continue;
    const auto eq = line.find('=');
    if (eq == std::string::npos) return fail("expected `key = value`");
    const std::string key = lower(trim(line.substr(0, eq)));
    const std::string value = trim(line.substr(eq + 1));
    const std::vector<std::string> items = split_list(value);
    if (items.empty()) return fail("empty value for `" + key + "`");

    if (key == "protocols") {
      out.protocols.clear();
      for (const auto& it : items) {
        Protocol p;
        if (!parse_protocol(it, p)) {
          return fail("unknown protocol `" + it + "`");
        }
        out.protocols.push_back(p);
      }
    } else if (key == "nodes") {
      out.node_counts.clear();
      for (const auto& it : items) {
        std::int64_t n;
        if (!parse_i64(it, n) || n < 2 ||
            n > static_cast<std::int64_t>(kMaxNodes)) {
          return fail("bad node count `" + it + "`");
        }
        out.node_counts.push_back(static_cast<NodeId>(n));
      }
    } else if (key == "utilisations") {
      out.utilisations.clear();
      for (const auto& it : items) {
        double u;
        if (!parse_f64(it, u)) return fail("bad utilisation `" + it + "`");
        out.utilisations.push_back(u);
      }
    } else if (key == "bers") {
      out.bers.clear();
      for (const auto& it : items) {
        double b;
        if (!parse_f64(it, b) || !(b >= 0.0) || b >= 1.0) {
          return fail("bad ber `" + it + "`");
        }
        out.bers.push_back(b);
      }
    } else if (key == "data_bers") {
      out.data_bers.clear();
      for (const auto& it : items) {
        double b;
        if (!parse_f64(it, b) || !(b >= 0.0) || b >= 1.0) {
          return fail("bad data_ber `" + it + "`");
        }
        out.data_bers.push_back(b);
      }
    } else if (key == "churns") {
      out.churns.clear();
      for (const auto& it : items) {
        double c;
        if (!parse_f64(it, c) || !(c >= 0.0)) {
          return fail("bad churn `" + it + "`");
        }
        out.churns.push_back(c);
      }
    } else if (key == "link_cuts") {
      out.link_cuts.clear();
      for (const auto& it : items) {
        std::int64_t c;
        if (!parse_i64(it, c) || c < 0) {
          return fail("bad link_cuts `" + it + "`");
        }
        out.link_cuts.push_back(static_cast<int>(c));
      }
    } else if (key == "mixes") {
      out.mixes.clear();
      for (const auto& it : items) {
        WorkloadMix m;
        if (!parse_mix(it, m)) return fail("unknown mix `" + it + "`");
        out.mixes.push_back(m);
      }
    } else if (key == "services" || key == "service_classes") {
      out.services.clear();
      for (const auto& it : items) {
        ServiceMix s;
        if (!parse_service(it, s)) {
          return fail("unknown service class `" + it + "`");
        }
        out.services.push_back(s);
      }
    } else if (key == "planners") {
      out.planners.clear();
      for (const auto& it : items) {
        bool b;
        if (!parse_flag(it, b)) return fail("bad planner flag `" + it + "`");
        out.planners.push_back(b);
      }
    } else if (key == "seeds") {
      out.set_seeds.clear();
      for (const auto& it : items) {
        std::uint64_t s;
        if (!parse_u64(it, s)) return fail("bad seed `" + it + "`");
        out.set_seeds.push_back(s);
      }
    } else {
      // Scalar keys take exactly one value.
      if (items.size() != 1) return fail("`" + key + "` takes one value");
      const std::string& it = items[0];
      std::int64_t i = 0;
      double f = 0.0;
      if (key == "repetitions") {
        if (!parse_i64(it, i) || i < 1) return fail("bad repetitions");
        out.repetitions = static_cast<int>(i);
      } else if (key == "slots") {
        if (!parse_i64(it, i) || i < 1) return fail("bad slots");
        out.slots = i;
      } else if (key == "connections_per_node") {
        if (!parse_i64(it, i) || i < 1) {
          return fail("bad connections_per_node");
        }
        out.connections_per_node = static_cast<int>(i);
      } else if (key == "min_period_slots") {
        if (!parse_i64(it, i) || i < 1) return fail("bad min_period_slots");
        out.min_period_slots = i;
      } else if (key == "max_period_slots") {
        if (!parse_i64(it, i) || i < 1) return fail("bad max_period_slots");
        out.max_period_slots = i;
      } else if (key == "multicast_fraction") {
        if (!parse_f64(it, f)) return fail("bad multicast_fraction");
        out.multicast_fraction = f;
      } else if (key == "background_rate") {
        if (!parse_f64(it, f)) return fail("bad background_rate");
        out.background_rate = f;
      } else if (key == "saturation_rate") {
        if (!parse_f64(it, f)) return fail("bad saturation_rate");
        out.saturation_rate = f;
      } else if (key == "cbs_flows") {
        if (!parse_i64(it, i) || i < 1) return fail("bad cbs_flows");
        out.cbs_flows = static_cast<int>(i);
      } else if (key == "cbs_budget_slots") {
        if (!parse_i64(it, i) || i < 1) return fail("bad cbs_budget_slots");
        out.cbs_budget_slots = i;
      } else if (key == "cbs_period_slots") {
        if (!parse_i64(it, i) || i < 1) return fail("bad cbs_period_slots");
        out.cbs_period_slots = i;
      } else if (key == "cbs_rate") {
        if (!parse_f64(it, f)) return fail("bad cbs_rate");
        out.cbs_rate = f;
      } else if (key == "cbs_saturation_rate") {
        if (!parse_f64(it, f)) return fail("bad cbs_saturation_rate");
        out.cbs_saturation_rate = f;
      } else if (key == "churn_nodes") {
        if (!parse_i64(it, i) || i < 1) return fail("bad churn_nodes");
        out.churn_nodes = static_cast<int>(i);
      } else if (key == "churn_down_slots") {
        if (!parse_f64(it, f) || !(f > 0.0)) {
          return fail("bad churn_down_slots");
        }
        out.churn_down_slots = f;
      } else if (key == "churn_detect_slots") {
        if (!parse_i64(it, i) || i < 2) return fail("bad churn_detect_slots");
        out.churn_detect_slots = i;
      } else if (key == "cut_slot") {
        if (!parse_i64(it, i) || i < 0) return fail("bad cut_slot");
        out.cut_slot = i;
      } else if (key == "cut_down_slots") {
        if (!parse_i64(it, i) || i < 1) return fail("bad cut_down_slots");
        out.cut_down_slots = i;
      } else if (key == "queue_cap") {
        if (!parse_i64(it, i) || i < 0) return fail("bad queue_cap");
        out.queue_cap = i;
      } else if (key == "link_length_m") {
        if (!parse_f64(it, f)) return fail("bad link_length_m");
        out.link_length_m = f;
      } else if (key == "payload_bytes") {
        if (!parse_i64(it, i) || i < 0) return fail("bad payload_bytes");
        out.slot_payload_bytes = i;
      } else if (key == "spatial_reuse") {
        bool b;
        if (!parse_flag(it, b)) return fail("bad spatial_reuse");
        out.spatial_reuse = b;
      } else if (key == "frame_crc") {
        bool b;
        if (!parse_flag(it, b)) return fail("bad frame_crc");
        out.frame_crc = b;
      } else if (key == "payload_crc") {
        bool b;
        if (!parse_flag(it, b)) return fail("bad payload_crc");
        out.payload_crc = b;
      } else if (key == "fast_forward") {
        bool b;
        if (!parse_flag(it, b)) return fail("bad fast_forward");
        out.fast_forward = b;
      } else if (key == "base_seed") {
        std::uint64_t s;
        if (!parse_u64(it, s)) return fail("bad base_seed");
        out.base_seed = s;
      } else {
        return fail("unknown key `" + key + "`");
      }
    }
  }
  const std::string invalid = out.validate();
  if (!invalid.empty()) {
    error = invalid;
    return false;
  }
  spec = out;
  error.clear();
  return true;
}

bool load_grid_file(const std::string& path, GridSpec& spec,
                    std::string& error) {
  std::ifstream in(path);
  if (!in) {
    error = "cannot open grid file `" + path + "`";
    return false;
  }
  std::ostringstream os;
  os << in.rdbuf();
  if (!parse_grid(os.str(), spec, error)) {
    error = path + ": " + error;
    return false;
  }
  return true;
}

}  // namespace ccredf::sweep
