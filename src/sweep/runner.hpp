// Multi-threaded, deterministic execution of a GridSpec.
//
// Work decomposition: shard s = (point p, repetition r), numbered
// s = p.index * repetitions + r.  A fixed-size worker pool claims shards
// from an atomic counter; each shard constructs its OWN
// sim::Simulator + net::Network (no shared mutable state between shards)
// and writes its metric vector into a pre-sized slot indexed by s.  After
// the pool joins, repetitions are folded into per-point OnlineStats
// serially in shard order -- so the aggregate is a pure function of the
// grid, never of the thread count or completion order.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "sim/stats.hpp"
#include "sweep/grid.hpp"

namespace ccredf::sweep {

/// Metrics recorded by every shard, in report order.
enum class Metric : std::size_t {
  kUMax = 0,          // analytic Eq. 6 bound for the point's ring
  kAdmittedFraction,  // admitted / requested connections
  kRtDelivered,       // real-time messages delivered
  kSchedMissRatio,    // EDF-deadline misses / delivered (RT)
  kUserMissRatio,     // Eq. 3 user-deadline misses / delivered (RT)
  kUserMisses,        // absolute user-deadline miss count (RT)
  kInversions,        // priority inversions (0 for CCR-EDF by design)
  kMeanLatencyUs,     // mean RT latency, microseconds
  kSlotFraction,      // wall-time fraction spent in data slots
  kGoodputBps,        // delivered payload bits / simulated second
  kGrantsPerBusySlot,  // spatial-reuse factor
  kRecoveries,         // token-loss recoveries (fault axis)
  kRecoveryUs,         // wall time lost to recovery timeouts, microseconds
  kFaultsDetected,     // corruptions caught by the integrity guards
  kFaultsSilent,       // corruptions that mutated behaviour unnoticed
  kPayloadCorruptions,  // data packets hit on the data fibres
  kPayloadDetected,     // ... caught by the payload CRC-32
  kPayloadUndetected,   // ... delivered as garbage
  kPayloadNacks,        // NACK bits carried on distribution packets
  kCbsAdmittedFraction,  // admitted / requested CBS servers (services axis)
  kCbsDelivered,         // jobs delivered across all CBS flows
  kCbsPostponements,     // budget-exhaustion postponements (c = Q, d += T)
  kCbsJain,              // Jain fairness index over per-flow CBS bytes
  kRecoveryGapP50Us,     // median token-loss recovery gap, microseconds
  kRecoveryGapP99Us,     // p99 token-loss recovery gap, microseconds
  kChurnDowns,           // nodes declared down by the monitor (churn axis)
  kChurnDetectLatency,   // mean detection latency, slots
  kChurnReclaimedU,      // Eq. 5/6 weight reclaimed by quarantines
  kChurnReadmitFraction,  // re-admission attempts that succeeded
  kChurnDisjointMisses,   // user misses on connections disjoint from
                          // every churned node (containment gate: 0)
  kPlannedSlotFraction,   // slots granted from a hypercycle plan
                          // (planner axis; 0 with the planner off)
  kPlanBuilds,            // successful plan builds at admit/close time
  kPlanDivergences,       // plans abandoned back to slot-by-slot TCMA
  kLinkCuts,              // hard link cuts applied (link_cuts axis)
  kSegmentQuarantines,    // transfers closed by segment-down quarantines
  kCutDetectSlots,        // summed in-protocol cut-detection latency
  kCutDisjointMisses      // user misses on connections whose segment
                          // avoids every cut link (containment gate: 0)
};
inline constexpr std::size_t kMetricCount = 37;

[[nodiscard]] const char* metric_name(Metric m);

struct ShardMetrics {
  std::array<double, kMetricCount> values{};
  bool ok = false;

  double& operator[](Metric m) { return values[static_cast<std::size_t>(m)]; }
  double operator[](Metric m) const {
    return values[static_cast<std::size_t>(m)];
  }
};

/// Aggregation of all repetitions of one grid point.
struct PointResult {
  GridPoint point;
  std::array<sim::OnlineStats, kMetricCount> metrics;
  int failed_shards = 0;

  [[nodiscard]] const sim::OnlineStats& stat(Metric m) const {
    return metrics[static_cast<std::size_t>(m)];
  }
  [[nodiscard]] double mean(Metric m) const { return stat(m).mean(); }
};

struct SweepResult {
  GridSpec spec;
  std::vector<PointResult> points;
  std::int64_t shards = 0;
  std::int64_t failed_shards = 0;
  /// Wall-clock execution time (measurement only -- never serialized into
  /// the deterministic report).
  double wall_seconds = 0.0;
};

struct RunOptions {
  /// Worker threads; 0 selects std::thread::hardware_concurrency().
  int threads = 1;
};

/// Runs one shard to completion (also the single-threaded building block
/// the determinism tests exercise directly).
[[nodiscard]] ShardMetrics run_shard(const GridSpec& spec,
                                     const GridPoint& point, int repetition);

/// Runs the whole grid; see file comment for the determinism argument.
[[nodiscard]] SweepResult run_sweep(const GridSpec& spec,
                                    const RunOptions& opts = {});

}  // namespace ccredf::sweep
