// Synthetic periodic connection sets.
//
// Classic real-time evaluation methodology: a target total utilisation is
// split across n connections with UUniFast (Bini & Buttazzo), periods are
// drawn log-uniformly so the set spans decades of time scales, and sizes
// follow from e_i = u_i * P_i.  Sources and destinations are uniform over
// distinct nodes, with an optional multicast fraction.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "core/connection.hpp"
#include "sim/rng.hpp"

namespace ccredf::workload {

struct PeriodicSetParams {
  double total_utilisation = 0.5;
  int connections = 8;
  std::int64_t min_period_slots = 20;
  std::int64_t max_period_slots = 2000;
  NodeId nodes = 8;
  /// Fraction of connections with 2..nodes-1 destinations.
  double multicast_fraction = 0.0;
  std::uint64_t seed = 1;
};

/// Generates a connection set whose total utilisation approximates
/// `total_utilisation` (exact up to integer rounding of sizes).
[[nodiscard]] std::vector<core::ConnectionParams> make_periodic_set(
    const PeriodicSetParams& params);

/// Reusable allocation scratch for the pooling overload below.
struct PeriodicScratch {
  std::vector<double> shares;
};

/// Pooling overload: clears and fills `out` with exactly the set the
/// value-returning form would produce (same RNG draw order, so the
/// results are identical element for element), but reuses the capacity
/// of `out` and `scratch` across calls.  The sweep runner keeps one
/// scratch per worker thread so a long grid performs O(workers), not
/// O(shards), workload-set allocations.
void make_periodic_set(const PeriodicSetParams& params,
                       PeriodicScratch& scratch,
                       std::vector<core::ConnectionParams>& out);

/// UUniFast: unbiased split of `total` utilisation into `n` shares.
[[nodiscard]] std::vector<double> uunifast(int n, double total,
                                           sim::Rng& rng);

}  // namespace ccredf::workload
