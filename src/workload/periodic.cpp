#include "workload/periodic.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/nodeset.hpp"

namespace ccredf::workload {

namespace {

void uunifast_fill(int n, double total, sim::Rng& rng,
                   std::vector<double>& u) {
  CCREDF_EXPECT(n >= 1, "uunifast: need at least one share");
  CCREDF_EXPECT(total > 0.0, "uunifast: total must be positive");
  u.assign(static_cast<std::size_t>(n), 0.0);
  double sum = total;
  for (int i = 0; i < n - 1; ++i) {
    const double next =
        sum * std::pow(rng.uniform01(),
                       1.0 / static_cast<double>(n - 1 - i));
    u[static_cast<std::size_t>(i)] = sum - next;
    sum = next;
  }
  u[static_cast<std::size_t>(n - 1)] = sum;
}

}  // namespace

std::vector<double> uunifast(int n, double total, sim::Rng& rng) {
  std::vector<double> u;
  uunifast_fill(n, total, rng, u);
  return u;
}

std::vector<core::ConnectionParams> make_periodic_set(
    const PeriodicSetParams& params) {
  PeriodicScratch scratch;
  std::vector<core::ConnectionParams> set;
  make_periodic_set(params, scratch, set);
  return set;
}

void make_periodic_set(const PeriodicSetParams& params,
                       PeriodicScratch& scratch,
                       std::vector<core::ConnectionParams>& set) {
  CCREDF_EXPECT(params.nodes >= 2, "make_periodic_set: need >= 2 nodes");
  CCREDF_EXPECT(params.min_period_slots >= 2 &&
                    params.max_period_slots >= params.min_period_slots,
                "make_periodic_set: bad period range");
  CCREDF_EXPECT(params.multicast_fraction >= 0.0 &&
                    params.multicast_fraction <= 1.0,
                "make_periodic_set: bad multicast fraction");
  sim::Rng rng(params.seed);
  uunifast_fill(params.connections, params.total_utilisation, rng,
                scratch.shares);
  const std::vector<double>& shares = scratch.shares;

  set.clear();
  set.reserve(shares.size());
  const double log_lo = std::log(static_cast<double>(params.min_period_slots));
  const double log_hi = std::log(static_cast<double>(params.max_period_slots));
  for (const double u : shares) {
    core::ConnectionParams c;
    // Log-uniform period.
    const double lp = rng.uniform_real(log_lo, log_hi);
    c.period_slots = static_cast<std::int64_t>(std::llround(std::exp(lp)));
    c.period_slots = std::clamp(c.period_slots, params.min_period_slots,
                                params.max_period_slots);
    // Size from the utilisation share; at least one slot, never above the
    // period (a share too small to fill a slot keeps e = 1, slightly
    // raising the set's actual utilisation -- callers re-measure with
    // total_utilisation()).
    c.size_slots = std::clamp<std::int64_t>(
        static_cast<std::int64_t>(
            std::llround(u * static_cast<double>(c.period_slots))),
        1, c.period_slots);
    c.source = static_cast<NodeId>(rng.uniform_u64(params.nodes));
    const bool multicast = rng.bernoulli(params.multicast_fraction) &&
                           params.nodes > 2;
    if (multicast) {
      const auto fanout = static_cast<NodeId>(
          2 + rng.uniform_u64(params.nodes - 2));  // 2..N-1 destinations
      NodeSet dests;
      while (static_cast<NodeId>(dests.size()) < fanout) {
        const auto d = static_cast<NodeId>(rng.uniform_u64(params.nodes));
        if (d != c.source) dests.insert(d);
      }
      c.dests = dests;
    } else {
      NodeId d;
      do {
        d = static_cast<NodeId>(rng.uniform_u64(params.nodes));
      } while (d == c.source);
      c.dests = NodeSet::single(d);
    }
    // Spread first releases so the set does not arrive in phase.
    c.offset_slots =
        static_cast<std::int64_t>(rng.uniform_u64(
            static_cast<std::uint64_t>(c.period_slots)));
    c.validate();
    set.push_back(c);
  }
}

}  // namespace ccredf::workload
