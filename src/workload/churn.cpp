#include "workload/churn.hpp"

#include "common/error.hpp"
#include "sim/rng.hpp"

namespace ccredf::workload {
namespace {

// "churn" in ASCII -- the stream tag keeping churn dwells independent of
// the background ("back") and CBS ("cbs") workload streams.
constexpr std::uint64_t kChurnTag = 0x636875726E;

}  // namespace

void ChurnParams::validate() const {
  CCREDF_EXPECT(!nodes.empty(), "ChurnProcess: no nodes to churn");
  CCREDF_EXPECT(mean_up_slots > 0.0, "ChurnProcess: mean up-dwell <= 0");
  CCREDF_EXPECT(mean_down_slots > 0.0, "ChurnProcess: mean down-dwell <= 0");
}

ChurnProcess::ChurnProcess(net::Network& net, fault::FaultInjector& injector,
                           ChurnParams params, sim::TimePoint until) {
  params.validate();
  const sim::Duration extent = net.timing().slot_plus_max_gap();
  const sim::Duration up_mean = sim::Duration::picoseconds(
      static_cast<std::int64_t>(params.mean_up_slots *
                                static_cast<double>(extent.ps())));
  const sim::Duration down_mean = sim::Duration::picoseconds(
      static_cast<std::int64_t>(params.mean_down_slots *
                                static_cast<double>(extent.ps())));
  for (NodeId j : params.nodes) {
    sim::Rng rng =
        sim::Rng::stream(sim::Rng::stream_seed(params.seed, kChurnTag, 0),
                         j, 0);
    sim::TimePoint t = net.sim().now();
    bool up = true;  // every churned node starts healthy
    while (true) {
      t = t + rng.exponential(up ? up_mean : down_mean);
      if (t >= until) break;
      if (up) {
        injector.schedule_node_failure(j, t);
        ++failures_;
      } else {
        injector.schedule_node_restore(j, t);
        ++restores_;
      }
      up = !up;
    }
  }
}

}  // namespace ccredf::workload
