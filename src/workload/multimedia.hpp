// Distributed-multimedia LAN scenario (paper §1 names "distributed
// multimedia systems" as a target application).
//
// A set of video streams (large periodic messages, deadline = frame
// period), audio streams (small periodic messages, tight deadlines) and
// background file transfer (best-effort) between workstation nodes.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "core/connection.hpp"
#include "workload/poisson.hpp"

namespace ccredf::workload {

struct MultimediaParams {
  NodeId nodes = 8;
  int video_streams = 3;
  int audio_streams = 4;
  /// Frame period of video streams, in slots.
  std::int64_t video_period_slots = 400;
  /// Slots per video frame.
  std::int64_t video_frame_slots = 24;
  /// Period of audio packets, in slots.
  std::int64_t audio_period_slots = 80;
  std::int64_t audio_packet_slots = 1;
  std::uint64_t seed = 11;
};

struct MultimediaScenario {
  std::vector<core::ConnectionParams> connections;
  std::vector<std::string> labels;
  double total_utilisation = 0.0;
  /// Suggested background best-effort load for the same network.
  PoissonParams background;
};

[[nodiscard]] MultimediaScenario make_multimedia_scenario(
    const MultimediaParams& params);

}  // namespace ccredf::workload
