#include "workload/radar.hpp"

#include <sstream>

#include "common/error.hpp"
#include "common/nodeset.hpp"

namespace ccredf::workload {

RadarScenario make_radar_scenario(const RadarParams& p) {
  CCREDF_EXPECT(p.beamformers >= 1 && p.doppler_banks >= 1,
                "radar: need at least one beamformer and one Doppler bank");
  CCREDF_EXPECT(p.cpi_slots >= 4, "radar: CPI too short");

  RadarScenario s;
  const NodeId frontend = 0;
  const NodeId beam0 = 1;
  const NodeId doppler0 = static_cast<NodeId>(1 + p.beamformers);
  const NodeId detector =
      static_cast<NodeId>(1 + p.beamformers + p.doppler_banks);
  const NodeId tracker = detector + 1;
  s.nodes_required = tracker + 1;

  auto add = [&s](core::ConnectionParams c, std::string label) {
    c.validate();
    s.total_utilisation += c.utilisation();
    s.connections.push_back(c);
    s.labels.push_back(std::move(label));
  };

  // Front end multicasts raw samples to every beamformer.
  {
    core::ConnectionParams c;
    c.source = frontend;
    for (int b = 0; b < p.beamformers; ++b) {
      c.dests.insert(beam0 + static_cast<NodeId>(b));
    }
    c.size_slots = p.frontend_slots;
    c.period_slots = p.cpi_slots;
    add(c, "frontend->beamformers (raw samples)");
  }

  // Corner turn: each beamformer to each Doppler bank.
  for (int b = 0; b < p.beamformers; ++b) {
    for (int d = 0; d < p.doppler_banks; ++d) {
      core::ConnectionParams c;
      c.source = beam0 + static_cast<NodeId>(b);
      c.dests = NodeSet::single(doppler0 + static_cast<NodeId>(d));
      c.size_slots = p.corner_turn_slots;
      c.period_slots = p.cpi_slots;
      std::ostringstream label;
      label << "corner-turn beam" << b << "->doppler" << d;
      add(c, label.str());
    }
  }

  // Doppler banks to the CFAR detector.
  for (int d = 0; d < p.doppler_banks; ++d) {
    core::ConnectionParams c;
    c.source = doppler0 + static_cast<NodeId>(d);
    c.dests = NodeSet::single(detector);
    c.size_slots = p.detection_slots;
    c.period_slots = p.cpi_slots;
    std::ostringstream label;
    label << "doppler" << d << "->detector";
    add(c, label.str());
  }

  // Detector to tracker/display.
  {
    core::ConnectionParams c;
    c.source = detector;
    c.dests = NodeSet::single(tracker);
    c.size_slots = p.track_slots;
    c.period_slots = p.cpi_slots;
    add(c, "detector->tracker (plots)");
  }

  return s;
}

}  // namespace ccredf::workload
