// Bursty on/off traffic (two-state Markov-modulated Poisson process).
//
// Each node alternates between an idle phase and a burst phase with
// exponentially distributed dwell times; during a burst it emits
// best-effort messages at a high rate towards a single "burst peer".
// This is the classic model of file transfers / swapped video scenes and
// stresses the priority machinery far harder than plain Poisson traffic:
// bursts pile deep queues behind one head-of-line request per node.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "core/priority.hpp"
#include "net/network.hpp"
#include "sim/rng.hpp"
#include "sim/time.hpp"

namespace ccredf::workload {

struct BurstParams {
  /// Mean idle-phase length in slot extents.
  double mean_idle_slots = 200.0;
  /// Mean burst-phase length in slot extents.
  double mean_burst_slots = 40.0;
  /// Messages per slot extent while bursting.
  double burst_rate = 1.0;
  std::int64_t min_size_slots = 1;
  std::int64_t max_size_slots = 6;
  std::int64_t min_laxity_slots = 50;
  std::int64_t max_laxity_slots = 1000;
  core::TrafficClass traffic_class = core::TrafficClass::kBestEffort;
  std::uint64_t seed = 3;

  void validate() const;
};

class BurstGenerator {
 public:
  BurstGenerator(net::Network& net, BurstParams params,
                 sim::TimePoint until);

  [[nodiscard]] std::int64_t generated() const { return generated_; }
  [[nodiscard]] std::int64_t bursts_started() const { return bursts_; }

 private:
  void enter_idle(NodeId node);
  void enter_burst(NodeId node);
  void emit(NodeId node);

  net::Network& net_;
  BurstParams params_;
  sim::TimePoint until_;
  sim::Rng rng_;
  std::vector<NodeId> peer_;  // current burst destination per node
  std::int64_t generated_ = 0;
  std::int64_t bursts_ = 0;
};

}  // namespace ccredf::workload
