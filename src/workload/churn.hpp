// Continuous node churn: per-node alternating up/down renewal process.
//
// Each churned node lives an exponentially distributed up-dwell, fails
// (fail-silent, through fault::FaultInjector so the engine's idempotence
// and trace paths apply), stays down an exponentially distributed
// repair-dwell, is restored, and repeats -- independently per node until
// the horizon.  This is the workload that drives the resilience loop
// (services::ResilienceMonitor): detection, quarantine, reclamation and
// staged re-admission all happen continuously, not as a one-shot fault.
//
// Determinism: every node draws its dwells from its own stream forked
// off one seed via Rng::stream_seed (tag "churn"), so a node's fail and
// restore times are independent of how many other nodes churn, of every
// workload stream and of sweep sharding.  The whole schedule is computed
// and queued up-front in the constructor (~horizon / (mean_up +
// mean_down) events per node), so no generator state survives into the
// run and the event sequence is a pure function of (seed, nodes,
// horizon).
#pragma once

#include <cstdint>

#include "common/nodeset.hpp"
#include "common/types.hpp"
#include "fault/injector.hpp"
#include "net/network.hpp"
#include "sim/time.hpp"

namespace ccredf::workload {

struct ChurnParams {
  /// Nodes subject to churn.  Keep the designated restarter (node 0)
  /// out of this set when the experiment must survive master loss.
  NodeSet nodes;
  /// Mean up-dwell between repairs and the next failure, in slot
  /// extents (slot + max gap, the sweep's time unit).
  double mean_up_slots = 20000.0;
  /// Mean repair time, in slot extents.
  double mean_down_slots = 500.0;
  std::uint64_t seed = 1;

  void validate() const;
};

class ChurnProcess {
 public:
  /// Pre-schedules the full fail/restore schedule for every churned
  /// node from now until `until` through `injector`.  `net` and
  /// `injector` must outlive the scheduled events (i.e. the run).
  ChurnProcess(net::Network& net, fault::FaultInjector& injector,
               ChurnParams params, sim::TimePoint until);

  /// Failures scheduled (not necessarily distinct detections: a dwell
  /// shorter than the detection window can escape the monitor).
  [[nodiscard]] std::int64_t failures_scheduled() const { return failures_; }
  [[nodiscard]] std::int64_t restores_scheduled() const { return restores_; }

 private:
  std::int64_t failures_ = 0;
  std::int64_t restores_ = 0;
};

}  // namespace ccredf::workload
