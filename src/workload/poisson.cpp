#include "workload/poisson.hpp"

#include "common/error.hpp"
#include "common/nodeset.hpp"

namespace ccredf::workload {

PoissonGenerator::PoissonGenerator(net::Network& net, PoissonParams params,
                                   sim::TimePoint until)
    : net_(net), params_(params), until_(until), rng_(params.seed) {
  CCREDF_EXPECT(params_.rate_per_node > 0.0,
                "PoissonGenerator: rate must be positive");
  CCREDF_EXPECT(params_.min_size_slots >= 1 &&
                    params_.max_size_slots >= params_.min_size_slots,
                "PoissonGenerator: bad size range");
  CCREDF_EXPECT(params_.min_laxity_slots >= 1 &&
                    params_.max_laxity_slots >= params_.min_laxity_slots,
                "PoissonGenerator: bad laxity range");
  for (NodeId n = 0; n < net_.nodes(); ++n) schedule_next(n);
}

void PoissonGenerator::schedule_next(NodeId node) {
  const sim::Duration mean_gap = sim::Duration::picoseconds(
      static_cast<std::int64_t>(
          static_cast<double>(net_.timing().slot_plus_max_gap().ps()) /
          params_.rate_per_node));
  const sim::Duration wait = rng_.exponential(mean_gap);
  const sim::TimePoint at = net_.sim().now() + wait;
  if (at >= until_) return;
  net_.sim().schedule_at(at, [this, node] {
    emit(node);
    schedule_next(node);
  });
}

void PoissonGenerator::emit(NodeId node) {
  const NodeId n = net_.nodes();
  NodeId dest;
  if (params_.locality_hops >= 1) {
    const NodeId span = std::min<NodeId>(params_.locality_hops, n - 1);
    dest = net_.topology().downstream(
        node, static_cast<NodeId>(1 + rng_.uniform_u64(span)));
  } else {
    do {
      dest = static_cast<NodeId>(rng_.uniform_u64(n));
    } while (dest == node);
  }
  const std::int64_t size =
      rng_.uniform_int(params_.min_size_slots, params_.max_size_slots);
  if (params_.traffic_class == core::TrafficClass::kNonRealTime) {
    net_.send_non_realtime(node, NodeSet::single(dest), size);
  } else {
    const std::int64_t laxity =
        rng_.uniform_int(params_.min_laxity_slots, params_.max_laxity_slots);
    net_.send(node, NodeSet::single(dest), params_.traffic_class, size,
              net_.timing().slot() * laxity);
  }
  ++generated_;
}

}  // namespace ccredf::workload
