// Poisson best-effort / non-real-time traffic generator.
//
// Each node generates messages with exponential inter-arrival times;
// destinations are uniform (optionally biased towards nearby downstream
// nodes, which raises spatial-reuse opportunity -- experiment E9), sizes
// and laxities uniform over configured ranges.
#pragma once

#include <cstdint>

#include "common/types.hpp"
#include "core/priority.hpp"
#include "net/network.hpp"
#include "sim/rng.hpp"
#include "sim/time.hpp"

namespace ccredf::workload {

struct PoissonParams {
  /// Mean messages per slot-extent per node.
  double rate_per_node = 0.05;
  core::TrafficClass traffic_class = core::TrafficClass::kBestEffort;
  std::int64_t min_size_slots = 1;
  std::int64_t max_size_slots = 4;
  /// Relative deadline (laxity at release), uniform in this slot range;
  /// ignored for non-real-time traffic.
  std::int64_t min_laxity_slots = 10;
  std::int64_t max_laxity_slots = 200;
  /// 0 => destinations uniform over all other nodes; k >= 1 restricts the
  /// destination to at most k hops downstream (traffic locality).
  NodeId locality_hops = 0;
  std::uint64_t seed = 7;
};

class PoissonGenerator {
 public:
  /// Starts generating immediately; stops at `until`.  `net` must outlive
  /// the generator.
  PoissonGenerator(net::Network& net, PoissonParams params,
                   sim::TimePoint until);

  [[nodiscard]] std::int64_t generated() const { return generated_; }

 private:
  void schedule_next(NodeId node);
  void emit(NodeId node);

  net::Network& net_;
  PoissonParams params_;
  sim::TimePoint until_;
  sim::Rng rng_;
  std::int64_t generated_ = 0;
};

}  // namespace ccredf::workload
