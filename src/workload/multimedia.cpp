#include "workload/multimedia.hpp"

#include <sstream>

#include "common/error.hpp"
#include "common/nodeset.hpp"
#include "sim/rng.hpp"

namespace ccredf::workload {

MultimediaScenario make_multimedia_scenario(const MultimediaParams& p) {
  CCREDF_EXPECT(p.nodes >= 3, "multimedia: need at least three nodes");
  sim::Rng rng(p.seed);
  MultimediaScenario s;

  auto pick_pair = [&rng, &p](NodeId& src, NodeId& dst) {
    src = static_cast<NodeId>(rng.uniform_u64(p.nodes));
    do {
      dst = static_cast<NodeId>(rng.uniform_u64(p.nodes));
    } while (dst == src);
  };

  auto add = [&s](core::ConnectionParams c, std::string label) {
    c.validate();
    s.total_utilisation += c.utilisation();
    s.connections.push_back(c);
    s.labels.push_back(std::move(label));
  };

  for (int v = 0; v < p.video_streams; ++v) {
    core::ConnectionParams c;
    NodeId src, dst;
    pick_pair(src, dst);
    c.source = src;
    c.dests = NodeSet::single(dst);
    c.size_slots = p.video_frame_slots;
    c.period_slots = p.video_period_slots;
    c.offset_slots = static_cast<std::int64_t>(
        rng.uniform_u64(static_cast<std::uint64_t>(p.video_period_slots)));
    std::ostringstream label;
    label << "video" << v << " " << src << "->" << dst;
    add(c, label.str());
  }

  for (int a = 0; a < p.audio_streams; ++a) {
    core::ConnectionParams c;
    NodeId src, dst;
    pick_pair(src, dst);
    c.source = src;
    c.dests = NodeSet::single(dst);
    c.size_slots = p.audio_packet_slots;
    c.period_slots = p.audio_period_slots;
    c.offset_slots = static_cast<std::int64_t>(
        rng.uniform_u64(static_cast<std::uint64_t>(p.audio_period_slots)));
    std::ostringstream label;
    label << "audio" << a << " " << src << "->" << dst;
    add(c, label.str());
  }

  s.background.rate_per_node = 0.02;
  s.background.traffic_class = core::TrafficClass::kBestEffort;
  s.background.min_size_slots = 1;
  s.background.max_size_slots = 8;
  s.background.min_laxity_slots = 50;
  s.background.max_laxity_slots = 500;
  s.background.seed = p.seed + 1;
  return s;
}

}  // namespace ccredf::workload
