// Aperiodic / bursty traffic riding Constant-Bandwidth Servers.
//
// Unlike the PoissonGenerator (plain best-effort sends with made-up
// laxities), this generator submits jobs through net::Network::cbs_send,
// so every job's deadline comes from the server wake-up rule and budget
// overruns postpone instead of starving peers.  Two arrival shapes:
//   * Poisson: exponential inter-arrival per flow (mean_idle/burst = 0);
//   * bursty (two-state on/off): arrivals fire only during bursts, with
//     exponentially distributed burst and idle dwells -- the shape that
//     actually stresses bandwidth isolation.
// Per-flow Rng streams are forked from one seed (sim::Rng::stream), so
// the arrival pattern is independent of how flows interleave and stays
// byte-deterministic under any sweep sharding.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "net/network.hpp"
#include "sim/rng.hpp"
#include "sim/time.hpp"

namespace ccredf::workload {

struct AperiodicParams {
  /// Mean jobs per slot-extent per flow while arrivals are on.
  double rate_per_flow = 0.05;
  std::int64_t min_size_slots = 1;
  std::int64_t max_size_slots = 4;
  /// Two-state burst modulation, in slot extents: both 0 disables (pure
  /// Poisson); otherwise arrivals run only during bursts of mean dwell
  /// `mean_burst_slots`, separated by idles of mean `mean_idle_slots`.
  double mean_idle_slots = 0.0;
  double mean_burst_slots = 0.0;
  std::uint64_t seed = 11;

  void validate() const;
};

class AperiodicGenerator {
 public:
  /// Starts generating immediately onto the given ADMITTED CBS servers
  /// (one flow per id); stops at `until`.  `net` must outlive the
  /// generator.  An empty server list is a no-op generator.
  AperiodicGenerator(net::Network& net, std::vector<ConnectionId> servers,
                     AperiodicParams params, sim::TimePoint until);

  /// Jobs submitted so far (accepted or dropped at the buffer).
  [[nodiscard]] std::int64_t generated() const { return generated_; }
  /// Jobs discarded because their server was no longer open at emit
  /// time (quarantined by services::ResilienceMonitor after its source
  /// failed).  The arrival clock keeps running -- the RNG draw sequence
  /// is identical with and without quarantines, which the churn sweep's
  /// paired-seed comparisons rely on.
  [[nodiscard]] std::int64_t orphaned() const { return orphaned_; }

 private:
  struct Flow {
    ConnectionId server = kNoConnection;
    sim::Rng rng;
    bool bursting = true;
    /// When the current burst/idle dwell ends (bursty mode only).
    sim::TimePoint phase_end;
  };

  void schedule_next(std::size_t flow);
  void emit(std::size_t flow);
  [[nodiscard]] sim::Duration extent() const;

  net::Network& net_;
  AperiodicParams params_;
  sim::TimePoint until_;
  std::vector<Flow> flows_;
  std::int64_t generated_ = 0;
  std::int64_t orphaned_ = 0;
};

}  // namespace ccredf::workload
