// Radar signal-processing pipeline scenario (the paper's motivating
// application, §1 and references [1], [2]).
//
// The processing chain of a pulsed-Doppler radar mapped onto the ring:
//
//   node 0            receiver / ADC front end
//   nodes 1..B        beamformers (front end multicasts samples to all)
//   nodes B+1..B+D    Doppler filter banks; the beam->Doppler "corner
//                     turn" is all-to-all between the two groups
//   node B+D+1        CFAR detector (fan-in from every Doppler node)
//   node B+D+2        tracker / display
//
// Every stage is a periodic logical real-time connection with period
// equal to the coherent processing interval (CPI) and deadline = period.
// Data volumes shrink down the chain, as in the referenced systems.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "core/connection.hpp"

namespace ccredf::workload {

struct RadarParams {
  int beamformers = 3;   // B
  int doppler_banks = 2;  // D
  /// CPI expressed in slots.
  std::int64_t cpi_slots = 600;
  /// Slots of raw sample data the front end multicasts per CPI.
  std::int64_t frontend_slots = 60;
  /// Slots each beamformer sends to EACH Doppler bank per CPI.
  std::int64_t corner_turn_slots = 12;
  /// Slots each Doppler bank sends to the CFAR detector per CPI.
  std::int64_t detection_slots = 6;
  /// Slots the detector sends to the tracker per CPI.
  std::int64_t track_slots = 2;
};

struct RadarScenario {
  std::vector<core::ConnectionParams> connections;
  std::vector<std::string> labels;  // parallel to connections
  NodeId nodes_required = 0;
  double total_utilisation = 0.0;
};

/// Builds the connection set; callers open each connection on a network
/// with at least `nodes_required` nodes.
[[nodiscard]] RadarScenario make_radar_scenario(const RadarParams& params);

}  // namespace ccredf::workload
