#include "workload/burst.hpp"

#include "common/error.hpp"
#include "common/nodeset.hpp"

namespace ccredf::workload {

void BurstParams::validate() const {
  CCREDF_EXPECT(mean_idle_slots > 0.0 && mean_burst_slots > 0.0,
                "BurstParams: phase lengths must be positive");
  CCREDF_EXPECT(burst_rate > 0.0, "BurstParams: burst rate must be positive");
  CCREDF_EXPECT(min_size_slots >= 1 && max_size_slots >= min_size_slots,
                "BurstParams: bad size range");
  CCREDF_EXPECT(min_laxity_slots >= 1 &&
                    max_laxity_slots >= min_laxity_slots,
                "BurstParams: bad laxity range");
}

BurstGenerator::BurstGenerator(net::Network& net, BurstParams params,
                               sim::TimePoint until)
    : net_(net), params_(params), until_(until), rng_(params.seed),
      peer_(net.nodes(), kInvalidNode) {
  params_.validate();
  CCREDF_EXPECT(net.nodes() >= 2, "BurstGenerator: need at least two nodes");
  for (NodeId n = 0; n < net_.nodes(); ++n) enter_idle(n);
}

void BurstGenerator::enter_idle(NodeId node) {
  const sim::Duration extent = net_.timing().slot_plus_max_gap();
  const auto wait = rng_.exponential(extent * static_cast<std::int64_t>(
      std::max(1.0, params_.mean_idle_slots)));
  const sim::TimePoint at = net_.sim().now() + wait;
  if (at >= until_) return;
  net_.sim().schedule_at(at, [this, node] { enter_burst(node); });
}

void BurstGenerator::enter_burst(NodeId node) {
  ++bursts_;
  // Pick the burst peer once per burst (a file transfer has one sink).
  NodeId dest;
  do {
    dest = static_cast<NodeId>(rng_.uniform_u64(net_.nodes()));
  } while (dest == node);
  peer_[node] = dest;

  const sim::Duration extent = net_.timing().slot_plus_max_gap();
  const auto burst_len = rng_.exponential(
      extent * static_cast<std::int64_t>(
                   std::max(1.0, params_.mean_burst_slots)));
  const sim::TimePoint burst_end =
      std::min(net_.sim().now() + burst_len, until_);

  // Emit at burst_rate until the phase ends, then go idle again.
  const sim::Duration mean_gap = sim::Duration::picoseconds(
      static_cast<std::int64_t>(static_cast<double>(extent.ps()) /
                                params_.burst_rate));
  sim::TimePoint t = net_.sim().now();
  for (;;) {
    t += rng_.exponential(mean_gap);
    if (t >= burst_end) break;
    net_.sim().schedule_at(t, [this, node] { emit(node); });
  }
  if (burst_end < until_) {
    net_.sim().schedule_at(burst_end, [this, node] { enter_idle(node); });
  }
}

void BurstGenerator::emit(NodeId node) {
  const NodeId dest = peer_[node];
  if (dest == kInvalidNode) return;
  const std::int64_t size =
      rng_.uniform_int(params_.min_size_slots, params_.max_size_slots);
  const std::int64_t laxity =
      rng_.uniform_int(params_.min_laxity_slots, params_.max_laxity_slots);
  net_.send(node, NodeSet::single(dest), params_.traffic_class, size,
            net_.timing().slot() * laxity);
  ++generated_;
}

}  // namespace ccredf::workload
