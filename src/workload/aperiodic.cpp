#include "workload/aperiodic.hpp"

#include "common/error.hpp"

namespace ccredf::workload {

void AperiodicParams::validate() const {
  CCREDF_EXPECT(rate_per_flow > 0.0,
                "AperiodicGenerator: rate must be positive");
  CCREDF_EXPECT(min_size_slots >= 1 && max_size_slots >= min_size_slots,
                "AperiodicGenerator: bad size range");
  CCREDF_EXPECT((mean_idle_slots == 0.0) == (mean_burst_slots == 0.0),
                "AperiodicGenerator: burst modulation needs both dwells");
  CCREDF_EXPECT(mean_idle_slots >= 0.0 && mean_burst_slots >= 0.0,
                "AperiodicGenerator: negative dwell");
}

AperiodicGenerator::AperiodicGenerator(net::Network& net,
                                       std::vector<ConnectionId> servers,
                                       AperiodicParams params,
                                       sim::TimePoint until)
    : net_(net), params_(params), until_(until) {
  params_.validate();
  flows_.reserve(servers.size());
  for (std::size_t f = 0; f < servers.size(); ++f) {
    Flow flow{servers[f], sim::Rng::stream(params_.seed, f, 0), true,
              sim::TimePoint::origin()};
    if (params_.mean_burst_slots > 0.0) {
      // Start each flow in a burst of a fresh random dwell.
      const sim::Duration burst_mean = sim::Duration::picoseconds(
          static_cast<std::int64_t>(params_.mean_burst_slots *
                                    static_cast<double>(extent().ps())));
      flow.phase_end = net_.sim().now() + flow.rng.exponential(burst_mean);
    }
    flows_.push_back(flow);
    schedule_next(f);
  }
}

sim::Duration AperiodicGenerator::extent() const {
  return net_.timing().slot_plus_max_gap();
}

void AperiodicGenerator::schedule_next(std::size_t f) {
  Flow& flow = flows_[f];
  const sim::Duration mean_gap = sim::Duration::picoseconds(
      static_cast<std::int64_t>(static_cast<double>(extent().ps()) /
                                params_.rate_per_flow));
  sim::TimePoint at = net_.sim().now() + flow.rng.exponential(mean_gap);
  if (params_.mean_burst_slots > 0.0) {
    // Walk the on/off phase machine forward until `at` lands inside a
    // burst; time spent in idle phases just pushes the arrival out.
    const sim::Duration burst_mean = sim::Duration::picoseconds(
        static_cast<std::int64_t>(params_.mean_burst_slots *
                                  static_cast<double>(extent().ps())));
    const sim::Duration idle_mean = sim::Duration::picoseconds(
        static_cast<std::int64_t>(params_.mean_idle_slots *
                                  static_cast<double>(extent().ps())));
    while (true) {
      if (flow.bursting) {
        if (at < flow.phase_end) break;  // arrival lands in this burst
        // Burst ended first: pause the arrival clock over the idle
        // dwell and resume in the next burst.
        const sim::Duration idle = flow.rng.exponential(idle_mean);
        at = at + idle;
        flow.bursting = false;
        flow.phase_end = flow.phase_end + idle;
      } else {
        flow.bursting = true;
        flow.phase_end = flow.phase_end + flow.rng.exponential(burst_mean);
      }
    }
  }
  if (at >= until_) return;
  net_.sim().schedule_at(at, [this, f] {
    emit(f);
    schedule_next(f);
  });
}

void AperiodicGenerator::emit(std::size_t f) {
  Flow& flow = flows_[f];
  // The size draw happens unconditionally so the per-flow RNG sequence
  // does not depend on whether the server is currently quarantined.
  const std::int64_t size =
      flow.rng.uniform_int(params_.min_size_slots, params_.max_size_slots);
  if (net_.cbs_server(flow.server) == nullptr) {
    ++orphaned_;  // server closed (resilience quarantine); drop the job
    return;
  }
  net_.cbs_send(flow.server, size);
  ++generated_;
}

}  // namespace ccredf::workload
