#include "phy/ring_phy.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace ccredf::phy {

RingPhy::RingPhy(RibbonLinkParams link, NodeId nodes, double link_length_m)
    : RingPhy(link, std::vector<double>(nodes, link_length_m)) {}

RingPhy::RingPhy(RibbonLinkParams link, std::vector<double> link_lengths_m)
    : link_(link), lengths_m_(std::move(link_lengths_m)) {
  validate();
  delays_.reserve(lengths_m_.size());
  prefix_ps_.reserve(lengths_m_.size() + 1);
  prefix_ps_.push_back(0);
  std::int64_t total_ps = 0;
  for (const double len : lengths_m_) {
    const auto ps = static_cast<std::int64_t>(std::llround(
        len * static_cast<double>(link_.propagation_ps_per_m)));
    delays_.push_back(sim::Duration::picoseconds(ps));
    total_ps += ps;
    prefix_ps_.push_back(total_ps);
  }
  ring_delay_ = sim::Duration::picoseconds(total_ps);
  mean_length_m_ = std::accumulate(lengths_m_.begin(), lengths_m_.end(), 0.0) /
                   static_cast<double>(lengths_m_.size());
}

void RingPhy::validate() const {
  link_.validate();
  CCREDF_EXPECT(lengths_m_.size() >= 2, "RingPhy: need at least two nodes");
  CCREDF_EXPECT(lengths_m_.size() <= kMaxNodes,
                "RingPhy: too many nodes (kMaxNodes)");
  CCREDF_EXPECT(
      std::all_of(lengths_m_.begin(), lengths_m_.end(),
                  [](double l) { return l > 0.0; }),
      "RingPhy: link lengths must be positive");
}

sim::Duration RingPhy::link_delay(LinkId l) const {
  CCREDF_EXPECT(l < delays_.size(), "RingPhy: link index out of range");
  return delays_[l];
}

sim::Duration RingPhy::path_delay(NodeId from, NodeId hops) const {
  CCREDF_EXPECT(from < nodes(), "RingPhy: node index out of range");
  CCREDF_EXPECT(hops < nodes(), "RingPhy: path longer than N-1 hops");
  // Prefix sums make this O(1); it runs once per node per slot (sampling
  // offsets, delivery timestamps, hand-over gaps).
  const std::size_t end = static_cast<std::size_t>(from) + hops;
  const std::size_t n = delays_.size();
  std::int64_t ps = prefix_ps_[std::min(end, n)] - prefix_ps_[from];
  if (end > n) ps += prefix_ps_[end - n];  // wrapped past node 0
  return sim::Duration::picoseconds(ps);
}

sim::Duration RingPhy::max_handover_time() const {
  // N-1 hops starting anywhere; with unequal links the worst start is the
  // one whose *excluded* link is shortest.
  sim::Duration worst = sim::Duration::zero();
  for (NodeId from = 0; from < nodes(); ++from) {
    worst = std::max(worst, path_delay(from, nodes() - 1));
  }
  return worst;
}

}  // namespace ccredf::phy
