// Fibre-ribbon link model (paper §2, Fig. 1).
//
// Each unidirectional ribbon carries ten fibres: eight data fibres move one
// byte per clock tick, one fibre carries that clock, and one carries the
// bit-serial control channel (also clocked by the clock fibre, one control
// bit per tick).  Hence one "bit time" (clock period) moves one *byte* of
// data and one *bit* of control -- the 8x asymmetry that lets arbitration
// for slot N+1 overlap the data of slot N (paper Fig. 3).
#pragma once

#include <cstdint>

#include "common/error.hpp"
#include "sim/time.hpp"

namespace ccredf::phy {

struct RibbonLinkParams {
  /// Clock-fibre frequency in Hz; one tick clocks one byte of data and one
  /// control bit.
  std::int64_t clock_rate_hz = 400'000'000;

  /// Number of parallel data fibres (the paper fixes eight).
  int data_fibres = 8;

  /// Propagation constant of light in the fibre, ps per metre
  /// (~5 ns/m for silica, the paper's P in Eq. 1).
  std::int64_t propagation_ps_per_m = 5'000;

  /// Delay a control packet experiences passing through each node during
  /// the collection phase (append latency), in bit times; the paper's
  /// t_node in Eq. 2.
  int node_passthrough_bits = 2;

  /// Bits of silence after the distribution packet before the master stops
  /// the clock, and again before the next master detects the stop
  /// (paper Fig. 7 shows one bit time for each).
  int clock_stop_bits = 1;

  void validate() const {
    CCREDF_EXPECT(clock_rate_hz > 0, "clock rate must be positive");
    CCREDF_EXPECT(data_fibres > 0, "need at least one data fibre");
    CCREDF_EXPECT(propagation_ps_per_m > 0,
                  "propagation constant must be positive");
    CCREDF_EXPECT(node_passthrough_bits >= 0,
                  "node passthrough cannot be negative");
    CCREDF_EXPECT(clock_stop_bits >= 1, "need at least one stop bit");
  }

  /// Duration of one clock tick.
  [[nodiscard]] sim::Duration bit_time() const {
    return sim::Duration::picoseconds(1'000'000'000'000 / clock_rate_hz);
  }

  /// Time for `bytes` of payload on the byte-parallel data channel.
  [[nodiscard]] sim::Duration data_time(std::int64_t bytes) const {
    return bit_time() * bytes;
  }

  /// Time for `bits` on the bit-serial control channel.
  [[nodiscard]] sim::Duration control_time(std::int64_t bits) const {
    return bit_time() * bits;
  }

  /// Aggregate data bit rate across the ribbon (bits/s).
  [[nodiscard]] std::int64_t aggregate_data_rate() const {
    return clock_rate_hz * data_fibres;
  }
};

/// Motorola OPTOBUS-class preset: 10-fibre ribbon, 8 data fibres at
/// 400 Mbit/s each => 3.2 Gbit/s aggregate, matching the "3 Gbits/s
/// parallel optical links" of the paper's reference [10].
[[nodiscard]] inline RibbonLinkParams optobus() { return RibbonLinkParams{}; }

/// A slower conservative preset (155 MHz clock) for sensitivity studies.
[[nodiscard]] inline RibbonLinkParams conservative_ribbon() {
  RibbonLinkParams p;
  p.clock_rate_hz = 155'000'000;
  return p;
}

}  // namespace ccredf::phy
