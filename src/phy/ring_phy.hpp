// Physical timing of the whole ring: per-link lengths and the propagation
// quantities entering Eq. 1 (clock hand-over) and Eq. 2 (minimum slot).
#pragma once

#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"
#include "phy/link.hpp"
#include "sim/time.hpp"

namespace ccredf::phy {

class RingPhy {
 public:
  /// All links share `link_length_m` (the paper assumes equal lengths).
  RingPhy(RibbonLinkParams link, NodeId nodes, double link_length_m);

  /// Per-link lengths (metres); size() must equal `nodes`.
  RingPhy(RibbonLinkParams link, std::vector<double> link_lengths_m);

  [[nodiscard]] NodeId nodes() const {
    return static_cast<NodeId>(lengths_m_.size());
  }
  [[nodiscard]] const RibbonLinkParams& link() const { return link_; }

  /// Propagation delay over link `l` (node l -> node l+1).
  [[nodiscard]] sim::Duration link_delay(LinkId l) const;

  /// Propagation delay along `hops` consecutive links starting at node
  /// `from` (downstream direction).
  [[nodiscard]] sim::Duration path_delay(NodeId from, NodeId hops) const;

  /// Propagation once around the entire ring (t_prop in Eq. 2).
  [[nodiscard]] sim::Duration ring_delay() const { return ring_delay_; }

  /// Average link length in metres (the L of Eq. 1).
  [[nodiscard]] double mean_length_m() const { return mean_length_m_; }

  /// Eq. 1: t_handover = P * L * D, with per-link lengths summed exactly.
  /// `from` is the current master; `hops` in [1, N-1] is the downstream
  /// distance to the next master.
  [[nodiscard]] sim::Duration handover_time(NodeId from, NodeId hops) const {
    return path_delay(from, hops);
  }

  /// Worst-case hand-over: D = N - 1 from the worst starting node.
  [[nodiscard]] sim::Duration max_handover_time() const;

  /// Number of downstream hops from `from` to `to` (1..N-1; 0 if equal).
  [[nodiscard]] NodeId hops_between(NodeId from, NodeId to) const {
    return (to + nodes() - from) % nodes();
  }

 private:
  void validate() const;

  RibbonLinkParams link_;
  std::vector<double> lengths_m_;
  std::vector<sim::Duration> delays_;
  /// prefix_ps_[i] = sum of delays_[0..i) in picoseconds; path_delay is a
  /// prefix-sum difference (plus one wrap term) instead of a hop loop.
  std::vector<std::int64_t> prefix_ps_;
  sim::Duration ring_delay_;
  double mean_length_m_ = 0.0;
};

}  // namespace ccredf::phy
