#include "phy/bit_error.hpp"

#include <cmath>

#include "common/error.hpp"

namespace ccredf::phy {

namespace {
void validate_ber(double ber) {
  CCREDF_EXPECT(ber >= 0.0 && ber < 1.0,
                "BitErrorModel: BER must be in [0, 1)");
}
}  // namespace

BitErrorModel::BitErrorModel(NodeId nodes, double ber,
                             std::uint64_t stream_seed)
    : seed_(stream_seed) {
  CCREDF_EXPECT(nodes >= 2 && nodes <= kMaxNodes,
                "BitErrorModel: node count out of range");
  validate_ber(ber);
  link_ber_.assign(nodes, ber);
  enabled_ = ber > 0.0;
}

BitErrorModel::BitErrorModel(std::vector<double> link_ber,
                             std::uint64_t stream_seed)
    : link_ber_(std::move(link_ber)), seed_(stream_seed) {
  CCREDF_EXPECT(link_ber_.size() >= 2 && link_ber_.size() <= kMaxNodes,
                "BitErrorModel: link count out of range");
  for (const double b : link_ber_) {
    validate_ber(b);
    if (b > 0.0) enabled_ = true;
  }
}

double BitErrorModel::link_ber(LinkId link) const {
  CCREDF_EXPECT(link < link_ber_.size(),
                "BitErrorModel: link index out of range");
  return link_ber_[link];
}

double BitErrorModel::path_error_probability(LinkId first,
                                             NodeId hops) const {
  CCREDF_EXPECT(hops <= nodes(), "BitErrorModel: path longer than ring");
  double survive = 1.0;
  for (NodeId i = 0; i < hops; ++i) {
    survive *= 1.0 - link_ber_[(first + i) % nodes()];
  }
  return 1.0 - survive;
}

int BitErrorModel::corrupt(SlotIndex slot, std::uint64_t channel, double p,
                           std::uint8_t* bytes, std::size_t nbits) const {
  return sample_flips(slot, channel, p, bytes, nbits);
}

int BitErrorModel::count_flips(SlotIndex slot, std::uint64_t channel,
                               double p, std::size_t nbits) const {
  return sample_flips(slot, channel, p, nullptr, nbits);
}

int BitErrorModel::sample_flips(SlotIndex slot, std::uint64_t channel,
                                double p, std::uint8_t* bytes,
                                std::size_t nbits) const {
  if (p <= 0.0 || nbits == 0) return 0;
  CCREDF_EXPECT(p < 1.0, "BitErrorModel: corruption probability >= 1");
  sim::Rng rng =
      sim::Rng::stream(seed_, static_cast<std::uint64_t>(slot), channel);
  // Geometric skip sampling: instead of one Bernoulli draw per bit, draw
  // the gap to the next flipped bit directly -- O(flips), not O(bits),
  // so BER 1e-9 on a 100-bit frame costs one draw, not 100.
  const double log1mp = std::log1p(-p);
  int flips = 0;
  std::size_t pos = 0;
  while (true) {
    const double u = rng.uniform01();
    // skip = floor(log(1-u)/log(1-p)) is geometric with support {0,...}.
    const double skip = std::floor(std::log1p(-u) / log1mp);
    // Guard the double->index conversion: a huge skip means "no more
    // flips in this frame" long before the cast could overflow.
    if (!(skip < static_cast<double>(nbits - pos))) break;
    pos += static_cast<std::size_t>(skip);
    if (bytes != nullptr) {
      bytes[pos / 8] ^= static_cast<std::uint8_t>(0x80u >> (pos % 8));
    }
    ++flips;
    ++pos;
    if (pos >= nbits) break;
  }
  return flips;
}

}  // namespace ccredf::phy
