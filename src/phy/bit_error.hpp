// Per-link bit-error-rate model for the ribbon's serial channels.
//
// Fibre-ribbon links fail bit-wise: a flipped priority or reservation
// bit silently misarbitrates a slot, a flipped payload bit silently
// corrupts the application's data -- neither kills the packet.  This
// model draws the bit flips a frame suffers while traversing a set of
// links, with every draw keyed on (slot, channel) coordinates via
// Rng::stream_seed -- no generator state is carried between calls, so
// fault streams are independent of workload streams and byte-identical
// across sweep thread counts (the same determinism contract as the
// sweep runner itself).  One instance models the control fibre; a
// second, independently seeded instance models the data fibres (the
// injector keeps the two on disjoint channel namespaces).
//
// The model is deliberately ignorant of frame layout: it flips bits in
// a raw MSB-first packed buffer.  Layout knowledge (which field a flip
// landed in, whether guards catch it) lives in core/frames.* and the
// fault injector.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "sim/rng.hpp"

namespace ccredf::phy {

class BitErrorModel {
 public:
  /// Uniform BER on every one of the ring's `nodes` links.
  BitErrorModel(NodeId nodes, double ber, std::uint64_t stream_seed);
  /// Per-link BER; link l connects node l to its downstream neighbour.
  BitErrorModel(std::vector<double> link_ber, std::uint64_t stream_seed);

  [[nodiscard]] NodeId nodes() const {
    return static_cast<NodeId>(link_ber_.size());
  }
  [[nodiscard]] double link_ber(LinkId link) const;
  /// True when at least one link has a non-zero error rate.
  [[nodiscard]] bool enabled() const { return enabled_; }

  /// Probability that a given bit is corrupted on the path starting at
  /// link `first` and spanning `hops` consecutive links:
  /// 1 - prod(1 - ber_l).  (An even number of flips of the SAME bit
  /// re-corrupting it back is negligible at realistic BERs and ignored.)
  [[nodiscard]] double path_error_probability(LinkId first,
                                              NodeId hops) const;

  /// Flips each of the `nbits` MSB-first packed bits in `bytes`
  /// independently with probability `p`; returns the number of flips.
  /// All randomness is keyed on (slot, channel): two calls with the
  /// same coordinates flip the same bits, calls with different
  /// coordinates are statistically independent.  `channel` namespaces
  /// the frame (collection record of node j, distribution packet, ...).
  int corrupt(SlotIndex slot, std::uint64_t channel, double p,
              std::uint8_t* bytes, std::size_t nbits) const;

  /// Counts the flips an `nbits`-bit frame would suffer at probability
  /// `p`, without materialising any buffer -- data-channel payloads are
  /// orders of magnitude larger than control frames and the reliability
  /// model only needs to know whether (and how badly) a packet was hit.
  /// Keyed identically to corrupt(): the same (slot, channel, p, nbits)
  /// always yields the same count.
  [[nodiscard]] int count_flips(SlotIndex slot, std::uint64_t channel,
                                double p, std::size_t nbits) const;

 private:
  int sample_flips(SlotIndex slot, std::uint64_t channel, double p,
                   std::uint8_t* bytes, std::size_t nbits) const;

  std::vector<double> link_ber_;
  std::uint64_t seed_;
  bool enabled_ = false;
};

}  // namespace ccredf::phy
