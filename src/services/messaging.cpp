#include "services/messaging.hpp"

#include "common/error.hpp"

namespace ccredf::services {

Messenger::Messenger(net::Network& net)
    : net_(net), handlers_(net.nodes()) {
  net_.add_slot_observer(
      [this](const net::SlotRecord& rec) { on_slot(rec); });
}

void Messenger::set_handler(NodeId node, Handler h) {
  CCREDF_EXPECT(node < handlers_.size(), "Messenger: bad node");
  handlers_[node] = std::move(h);
}

std::int64_t Messenger::slots_for(std::int64_t bytes) const {
  const std::int64_t per_slot = net_.timing().payload_bytes();
  return std::max<std::int64_t>(1, (bytes + per_slot - 1) / per_slot);
}

MessageId Messenger::multicast_bytes(NodeId src, NodeSet dests,
                                     std::span<const std::uint8_t> payload,
                                     core::TrafficClass cls,
                                     sim::Duration relative_deadline) {
  const std::int64_t slots =
      slots_for(static_cast<std::int64_t>(payload.size()));
  const MessageId id = net_.send(src, dests, cls, slots, relative_deadline);
  payloads_.emplace(id,
                    std::vector<std::uint8_t>(payload.begin(), payload.end()));
  return id;
}

MessageId Messenger::send_bytes(NodeId src, NodeId dst,
                                std::span<const std::uint8_t> payload,
                                core::TrafficClass cls,
                                sim::Duration relative_deadline) {
  return multicast_bytes(src, NodeSet::single(dst), payload, cls,
                         relative_deadline);
}

MessageId Messenger::send_short(NodeId src, NodeId dst,
                                std::span<const std::uint8_t> payload,
                                sim::Duration relative_deadline) {
  CCREDF_EXPECT(static_cast<std::int64_t>(payload.size()) <=
                    net_.timing().payload_bytes(),
                "Messenger: short message exceeds one slot");
  return send_bytes(src, dst, payload, core::TrafficClass::kBestEffort,
                    relative_deadline);
}

void Messenger::on_slot(const net::SlotRecord& rec) {
  for (const core::Delivery& d : rec.deliveries) {
    const auto it = payloads_.find(d.id);
    if (it == payloads_.end()) continue;
    Received r;
    r.id = d.id;
    r.source = d.source;
    r.payload = std::move(it->second);
    r.completed = d.completed;
    r.met_deadline = d.met_deadline();
    payloads_.erase(it);
    ++received_;
    for (const NodeId dst : d.dests) {
      if (handlers_[dst]) handlers_[dst](dst, r);
    }
  }
}

}  // namespace ccredf::services
