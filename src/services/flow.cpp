#include "services/flow.hpp"

#include "common/error.hpp"

namespace ccredf::services {

CreditFlowControl::CreditFlowControl(net::Network& net, int window)
    : net_(net), window_(window) {
  CCREDF_EXPECT(window >= 1, "CreditFlowControl: window must be >= 1");
  net_.add_slot_observer(
      [this](const net::SlotRecord& rec) { on_slot(rec); });
}

int CreditFlowControl::credits(NodeId src, NodeId dst) const {
  const auto it = credits_.find({src, dst});
  return it == credits_.end() ? window_ : it->second;
}

std::size_t CreditFlowControl::blocked(NodeId src, NodeId dst) const {
  const auto it = pending_.find({src, dst});
  return it == pending_.end() ? 0 : it->second.size();
}

void CreditFlowControl::dispatch(NodeId src, NodeId dst,
                                 const PendingSend& p) {
  const MessageId id = net_.send_best_effort(
      src, NodeSet::single(dst), p.size_slots, p.relative_deadline);
  in_flight_.emplace(id, Pair{src, dst});
}

bool CreditFlowControl::send(NodeId src, NodeId dst, std::int64_t size_slots,
                             sim::Duration relative_deadline) {
  CCREDF_EXPECT(src != dst, "CreditFlowControl: src == dst");
  auto [it, inserted] = credits_.try_emplace({src, dst}, window_);
  PendingSend p{size_slots, relative_deadline};
  if (it->second > 0) {
    --it->second;
    dispatch(src, dst, p);
    return true;
  }
  pending_[{src, dst}].push_back(p);
  ++blocked_;
  return false;
}

void CreditFlowControl::on_slot(const net::SlotRecord& rec) {
  // Credits return one slot extent after delivery; processing at the next
  // slot boundary models the control-channel round trip conservatively.
  for (const core::Delivery& d : rec.deliveries) {
    const auto it = in_flight_.find(d.id);
    if (it == in_flight_.end()) continue;
    const Pair pair = it->second;
    in_flight_.erase(it);
    auto& q = pending_[pair];
    if (!q.empty()) {
      // Hand the credit straight to the oldest blocked send.
      const PendingSend next = q.front();
      q.pop_front();
      dispatch(pair.first, pair.second, next);
    } else {
      ++credits_[pair];
    }
  }
}

}  // namespace ccredf::services
