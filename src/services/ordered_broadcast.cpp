#include "services/ordered_broadcast.hpp"

#include "common/error.hpp"

namespace ccredf::services {

OrderedBroadcast::OrderedBroadcast(net::Network& net)
    : net_(net), handlers_(net.nodes()) {
  net_.add_slot_observer(
      [this](const net::SlotRecord& rec) { on_slot(rec); });
}

void OrderedBroadcast::set_handler(NodeId node, Handler h) {
  CCREDF_EXPECT(node < handlers_.size(), "OrderedBroadcast: bad node");
  handlers_[node] = std::move(h);
}

MessageId OrderedBroadcast::broadcast(NodeId src, std::int64_t size_slots,
                                      sim::Duration relative_deadline) {
  const MessageId id = net_.send(src, net_.broadcast_dests(src),
                                 core::TrafficClass::kBestEffort,
                                 size_slots, relative_deadline);
  mine_.insert(id);
  return id;
}

void OrderedBroadcast::on_slot(const net::SlotRecord& rec) {
  // A broadcast's final slot occupies the whole ring, so at most one of
  // our broadcasts completes per slot; slot order IS the total order.
  for (const core::Delivery& d : rec.deliveries) {
    const auto it = mine_.find(d.id);
    if (it == mine_.end()) continue;
    mine_.erase(it);
    Ordered o;
    o.sequence = next_sequence_++;
    o.id = d.id;
    o.source = d.source;
    o.delivered = d.completed;
    for (const NodeId dst : d.dests) {
      if (handlers_[dst]) handlers_[dst](dst, o);
    }
    // The source also learns its own broadcast's position.
    if (handlers_[d.source]) handlers_[d.source](d.source, o);
  }
}

}  // namespace ccredf::services
