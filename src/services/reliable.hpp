// Reliable transmission service (paper §1: "flow control and packet
// acknowledgement ... provided as an intrinsic part of the network" [4]).
//
// The destination acknowledges a received message in the distribution
// packet's ack field; the sender retransmits after a timeout when the
// acknowledgement does not appear (e.g. the transfer was corrupted).
// Since the simulated medium itself is error-free, the service injects
// losses with a configurable probability to exercise the recovery path.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <unordered_set>

#include "common/nodeset.hpp"
#include "common/types.hpp"
#include "net/network.hpp"
#include "sim/rng.hpp"
#include "sim/time.hpp"

namespace ccredf::services {

class ReliableChannel {
 public:
  struct Params {
    /// Probability a transfer is corrupted and must be retransmitted.
    double loss_probability = 0.0;
    /// Ack timeout (as a multiple of the worst-case slot extent), counted
    /// from the moment the sender observes its own transmission complete
    /// -- queueing delay never triggers a spurious retransmission.
    std::int64_t timeout_slots = 8;
    /// Give up after this many attempts (0 = never).
    int max_attempts = 16;
    std::uint64_t seed = 42;
  };

  struct TransferResult {
    MessageId id = 0;
    bool delivered = false;
    int attempts = 0;
    sim::TimePoint completed;
  };
  using CompletionCallback = std::function<void(const TransferResult&)>;

  ReliableChannel(net::Network& net, Params params);

  /// Sends `size_slots` of data from `src` to `dst` reliably as
  /// best-effort traffic; `cb` fires on final success or failure.
  /// Returns the transfer id (the first attempt's message id).
  MessageId send(NodeId src, NodeId dst, std::int64_t size_slots,
                 sim::Duration relative_deadline, CompletionCallback cb);

  [[nodiscard]] std::int64_t transfers_started() const { return started_; }
  [[nodiscard]] std::int64_t transfers_delivered() const {
    return delivered_;
  }
  [[nodiscard]] std::int64_t transfers_failed() const { return failed_; }
  [[nodiscard]] std::int64_t retransmissions() const { return retx_; }

 private:
  struct Transfer {
    MessageId transfer_id = 0;
    NodeId src = kInvalidNode;
    NodeId dst = kInvalidNode;
    std::int64_t size_slots = 1;
    sim::Duration relative_deadline = sim::Duration::zero();
    int attempts = 0;
    MessageId current_attempt = 0;
    sim::EventId timeout_event = 0;
    CompletionCallback cb;
  };

  void on_slot(const net::SlotRecord& rec);
  void attempt(Transfer& t);
  void on_timeout(MessageId transfer_id);
  [[nodiscard]] sim::Duration timeout() const;

  net::Network& net_;
  Params params_;
  sim::Rng rng_;
  /// Keyed by transfer id; `by_attempt_` maps in-flight message ids back.
  std::unordered_map<MessageId, Transfer> live_;
  std::unordered_map<MessageId, MessageId> by_attempt_;
  std::int64_t started_ = 0;
  std::int64_t delivered_ = 0;
  std::int64_t failed_ = 0;
  std::int64_t retx_ = 0;
};

}  // namespace ccredf::services
