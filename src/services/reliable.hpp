// Reliable transmission service (paper §1: "flow control and packet
// acknowledgement ... provided as an intrinsic part of the network" [4]).
//
// The destination acknowledges a received message in the distribution
// packet's ack field; a payload rejected by the receivers' CRC-32
// (NetworkConfig::with_payload_crc) is NACKed the same way, and the
// sender retransmits.  Retransmission is *laxity-budgeted*: a repeat is
// sent only while the remaining time to the transfer's deadline still
// covers the worst-case extent of one more attempt (size_slots plus an
// ack margin, each a full slot-plus-max-gap).  Each retransmission
// re-enters EDF at its TRUE remaining laxity -- tighter than the
// original -- so repair work competes at the urgency it actually has.
// A transfer whose budget no longer covers an attempt is abandoned
// early, releasing its slots to messages that can still make it.
//
// The legacy synthetic-loss mode (Params::loss_probability, for runs
// without a physical fault model) is kept but deprecated.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>

#include "common/nodeset.hpp"
#include "common/types.hpp"
#include "net/network.hpp"
#include "sim/rng.hpp"
#include "sim/time.hpp"

namespace ccredf::services {

class ReliableChannel {
 public:
  struct Params {
    /// DEPRECATED: probability a transfer is synthetically corrupted
    /// (pre-dates the physical data-channel fault model; prefer
    /// fault::FaultInjector::set_data_ber with with_payload_crc, which
    /// exercises the real NACK wire).  Still honoured; a one-time trace
    /// warning is emitted when non-zero.
    double loss_probability = 0.0;
    /// Ack timeout (as a multiple of the worst-case slot extent), counted
    /// from the moment the sender observes its own transmission complete
    /// -- queueing delay never triggers a spurious retransmission.  Used
    /// by the legacy synthetic-loss path only; NACKed transfers need no
    /// timeout (the NACK rides the very next distribution packet).
    std::int64_t timeout_slots = 8;
    /// Give up after this many attempts (0 = never).
    int max_attempts = 16;
    /// Budget retransmissions against the transfer deadline: retransmit
    /// only while remaining laxity covers one more worst-case attempt,
    /// and re-enter EDF at the true (tighter) remaining laxity.  When
    /// off, retries use the original relative deadline until the
    /// attempt cap -- the fixed-retry baseline.
    bool laxity_budgeted = true;
    /// Worst-case slots between a transfer's last data slot and the
    /// sender learning its fate (the ack/NACK rides the next
    /// distribution packet); part of the per-attempt budget.
    std::int64_t ack_margin_slots = 1;
    std::uint64_t seed = 42;
  };

  struct TransferResult {
    MessageId id = 0;
    bool delivered = false;
    /// True when the laxity budget ran out before the attempt cap: the
    /// transfer was hopeless and was abandoned early.
    bool abandoned = false;
    int attempts = 0;
    sim::TimePoint completed;
    /// The transfer's absolute deadline (infinity if none).
    sim::TimePoint deadline;
  };
  using CompletionCallback = std::function<void(const TransferResult&)>;

  ReliableChannel(net::Network& net, Params params);

  /// Sends `size_slots` of data from `src` to `dst` reliably as
  /// best-effort traffic; `cb` fires on final success or failure.
  /// Returns the transfer id (the first attempt's message id).
  MessageId send(NodeId src, NodeId dst, std::int64_t size_slots,
                 sim::Duration relative_deadline, CompletionCallback cb);

  [[nodiscard]] std::int64_t transfers_started() const { return started_; }
  [[nodiscard]] std::int64_t transfers_delivered() const {
    return delivered_;
  }
  [[nodiscard]] std::int64_t transfers_failed() const { return failed_; }
  /// ... of which were abandoned by the laxity budget.
  [[nodiscard]] std::int64_t transfers_abandoned() const {
    return abandoned_;
  }
  [[nodiscard]] std::int64_t retransmissions() const { return retx_; }
  /// Payload-CRC NACKs observed for this channel's transfers.
  [[nodiscard]] std::int64_t nacks_received() const { return nacks_; }

 private:
  struct Transfer {
    MessageId transfer_id = 0;
    NodeId src = kInvalidNode;
    NodeId dst = kInvalidNode;
    std::int64_t size_slots = 1;
    sim::Duration relative_deadline = sim::Duration::zero();
    /// Absolute deadline (send time + relative; infinity if none).
    sim::TimePoint deadline;
    int attempts = 0;
    MessageId current_attempt = 0;
    sim::EventId timeout_event = 0;
    CompletionCallback cb;
  };

  void on_slot(const net::SlotRecord& rec);
  void attempt(Transfer& t);
  /// Fires when the sender learns an attempt failed (ack timeout or
  /// NACK arrival): retransmit, or abandon if the budget ran out.
  void on_resolve(MessageId transfer_id);
  void finish(Transfer& t, bool delivered, bool abandoned,
              sim::TimePoint completed);
  /// Claims the live transfer owning in-flight attempt `id` (nullptr if
  /// the attempt is stale or foreign).
  Transfer* claim_attempt(MessageId id);
  /// True while the remaining laxity covers one more worst-case attempt.
  [[nodiscard]] bool budget_covers_attempt(const Transfer& t) const;
  [[nodiscard]] sim::Duration timeout() const;

  net::Network& net_;
  Params params_;
  sim::Rng rng_;
  /// Keyed by transfer id; `by_attempt_` maps in-flight message ids back.
  std::unordered_map<MessageId, Transfer> live_;
  std::unordered_map<MessageId, MessageId> by_attempt_;
  std::int64_t started_ = 0;
  std::int64_t delivered_ = 0;
  std::int64_t failed_ = 0;
  std::int64_t abandoned_ = 0;
  std::int64_t retx_ = 0;
  std::int64_t nacks_ = 0;
};

}  // namespace ccredf::services
