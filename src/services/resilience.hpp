// In-protocol failure detection, bandwidth reclamation and staged
// re-admission (closes the failure loop the paper's §8 leaves open).
//
// Evidence: every healthy node writes a request record -- a live request
// or the idle record whose start bit alone proves the writer -- into the
// collection packet each slot, so the master hears the whole live ring
// once per slot for free.  SlotRecord::heard exposes exactly that set;
// the monitor adds NO wire traffic and NO protocol field.
//
// State machine per node (driven only by `heard`):
//   kUp --(unheard > suspect_window)--> kSuspect
//   kSuspect --(unheard > detection_window)--> kDown
//   any --(heard)--> kUp
// On kDown the node's sourced connections and CBS servers are
// QUARANTINED: closed through the normal teardown paths, their Eq. 5/6
// weight (CBS servers at Q/T) released back to the AdmissionController
// -- survivors can immediately be admitted into the freed bandwidth.
// Quarantined connections enter a re-admission queue.
//
// When a down node is heard again (restore, or a false positive caused
// by a burst of lost records), its queued connections become eligible
// and are re-opened STAGED: a token bucket (readmit_burst capacity,
// one token per readmit_interval_slots) paces the re-runs of the
// admission test, and a rejected entry backs off exponentially -- so a
// repaired node cannot retake its bandwidth in one thundering herd while
// survivors hold it.  Re-opened connections get FRESH ids (admission
// never reuses ids); current_incarnation() maps a quarantined id to its
// live successor.
//
// Severed segments (third quarantine kind, *segment-down*): a hard link
// cut truncates the collection packet, so the master hears a contiguous
// unreachable suffix go silent -- a loss pattern the monitor excuses
// from the per-node miss accounting (the nodes are alive; only the path
// died).  Instead it adopts the network's severed-link view, closes
// exactly the cut-crossing connections/CBS servers (same teardown and
// reclaim-exactness invariant as a node quarantine), derates the
// admission capacity to the surviving-region pair fraction (0.5 for any
// single cut), and parks the closed entries until their links are
// spliced -- then the same token bucket stages their re-admission.
//
// Determinism: the monitor is a net::ResilienceHook, not a SlotObserver,
// so the engine's idle fast-forward stays enabled.  next_deadline_slot()
// bounds every skip at the earliest slot where a suspect/down transition
// or an eligible re-admission drain could occur, and on_fast_forward()
// batch-advances the bookkeeping for the skipped window -- byte-identical
// statistics between fast-forward and slot-by-slot execution
// (tests/sweep/churn_sweep_test.cpp pins it).
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <unordered_map>

#include "common/error.hpp"
#include "common/nodeset.hpp"
#include "common/types.hpp"
#include "core/cbs.hpp"
#include "core/connection.hpp"
#include "net/network.hpp"
#include "sim/stats.hpp"

namespace ccredf::services {

struct ResilienceParams {
  /// Slots a node may go unheard before it is declared DOWN (the
  /// detection deadline; latency is at most this + 1 slots, see
  /// PROTOCOL.md §7.4).  Must absorb single master-dead slots, which
  /// void one slot of evidence for EVERYONE (>= 2; realistic >= 8).
  std::int64_t detection_window_slots = 16;
  /// Slots unheard before a node is marked SUSPECT (observability only;
  /// no action is taken).  0 selects detection_window_slots / 2.
  std::int64_t suspect_window_slots = 0;
  /// Token-bucket refill period for staged re-admission: one
  /// re-admission attempt earns per this many slots.
  std::int64_t readmit_interval_slots = 8;
  /// Token-bucket capacity (maximum attempts in one slot).
  std::int64_t readmit_burst = 2;
  /// Base back-off after a rejected re-admission attempt, in slots;
  /// doubles per consecutive rejection of the same entry.
  std::int64_t backoff_slots = 64;
  /// Back-off ceiling.
  std::int64_t max_backoff_slots = 4096;

  void validate() const {
    CCREDF_EXPECT(detection_window_slots >= 2,
                  "resilience: detection window must be >= 2 slots");
    CCREDF_EXPECT(suspect_window_slots >= 0 &&
                      suspect_window_slots < detection_window_slots,
                  "resilience: suspect window must be < detection window");
    CCREDF_EXPECT(readmit_interval_slots >= 1,
                  "resilience: readmit interval must be >= 1");
    CCREDF_EXPECT(readmit_burst >= 1, "resilience: readmit burst must be >= 1");
    CCREDF_EXPECT(backoff_slots >= 1, "resilience: backoff must be >= 1");
    CCREDF_EXPECT(max_backoff_slots >= backoff_slots,
                  "resilience: backoff ceiling below base");
  }
};

struct ResilienceStats {
  /// kUp -> kSuspect transitions observed.
  std::int64_t suspects = 0;
  /// Nodes declared DOWN (each declaration, including repeats).
  std::int64_t downs = 0;
  /// Down nodes heard again (restores and false-positive self-heals).
  std::int64_t reappearances = 0;
  /// Hard-RT connections quarantined by declarations.
  std::int64_t connections_quarantined = 0;
  /// CBS servers quarantined by declarations.
  std::int64_t servers_quarantined = 0;
  /// Eq. 5/6 weight released back to admission by quarantines.
  double weight_reclaimed = 0.0;
  /// Weight successfully re-admitted from the queue.
  double weight_readmitted = 0.0;
  /// Segment-down events acted on (each fresh-cut observation, however
  /// many transfers it closed).
  std::int64_t segment_downs = 0;
  /// Connections + CBS servers closed by segment-down quarantines (the
  /// third quarantine kind: the source is alive but the transfer's
  /// segment crosses a severed link).
  std::int64_t segment_quarantines = 0;
  /// Re-admission attempts charged against the token bucket.
  std::int64_t readmit_attempts = 0;
  /// ... of which the admission test accepted.
  std::int64_t readmissions = 0;
  /// ... of which it rejected (entry backs off).
  std::int64_t readmit_rejections = 0;
  /// Slots from last heard record to declaration, per declaration.
  sim::ExactStats detection_latency_slots;
  /// Worst observed |utilisation drop - released weight| across
  /// quarantines: the reclamation-exactness invariant (bench E22 gates
  /// this at ~1e-9).
  double reclaim_error = 0.0;
};

class ResilienceMonitor final : public net::ResilienceHook {
 public:
  enum class NodeState : std::uint8_t { kUp, kSuspect, kDown };

  /// Attaches to `net` as its resilience hook (one at a time; the ctor
  /// displaces nothing -- attaching over an existing hook is a bug).
  /// `net` must outlive the monitor.
  ResilienceMonitor(net::Network& net, ResilienceParams params);
  ~ResilienceMonitor() override;

  ResilienceMonitor(const ResilienceMonitor&) = delete;
  ResilienceMonitor& operator=(const ResilienceMonitor&) = delete;

  [[nodiscard]] const ResilienceParams& params() const { return params_; }
  [[nodiscard]] const ResilienceStats& stats() const { return stats_; }
  [[nodiscard]] NodeState state(NodeId id) const {
    return tracked_[id].state;
  }
  [[nodiscard]] bool is_down(NodeId id) const {
    return tracked_[id].state == NodeState::kDown;
  }
  /// Entries waiting in the staged re-admission queue.
  [[nodiscard]] std::size_t readmit_queue_depth() const {
    return queue_.size();
  }
  /// Eq. 5/6 weight currently held in quarantine (reclaimed minus
  /// re-admitted).
  [[nodiscard]] double quarantined_weight() const {
    return stats_.weight_reclaimed - stats_.weight_readmitted;
  }
  /// The live successor of a (possibly quarantined) connection id:
  /// follows the re-admission chain; kNoConnection while the connection
  /// sits in the queue.  Ids never touched by quarantine map to
  /// themselves.
  [[nodiscard]] ConnectionId current_incarnation(ConnectionId id) const;

  // net::ResilienceHook
  void on_slot_end(const net::SlotRecord& rec) override;
  void on_fast_forward(SlotIndex first, std::int64_t k,
                       NodeSet heard) override;
  [[nodiscard]] SlotIndex next_deadline_slot(SlotIndex from,
                                             SlotIndex limit) override;

 private:
  struct Tracked {
    NodeState state = NodeState::kUp;
    /// Last slot whose collection phase evidenced this node; the slot
    /// before attachment initially (every node starts with zero miss).
    SlotIndex last_heard = -1;
  };
  struct PendingReadmit {
    NodeId node = kInvalidNode;
    bool is_cbs = false;
    core::ConnectionParams rt;  // valid when !is_cbs
    core::CbsParams cbs;        // valid when is_cbs
    ConnectionId former_id = kNoConnection;
    /// First slot this entry may spend a token (back-off gate).
    SlotIndex eligible = 0;
    /// Consecutive rejections (exponential back-off exponent).
    std::int64_t rejections = 0;
    /// Segment-down entry: parked until every link in `cut_links` is
    /// spliced (instead of until its node reappears).
    bool segment = false;
    LinkSet cut_links;
  };

  void heard_node(NodeId j, SlotIndex s);
  void declare_down(NodeId j, SlotIndex s);
  /// Adopts the network's severed-link view: a fresh cut quarantines
  /// every cut-crossing transfer, and any change renegotiates the
  /// admission capacity to the surviving-region fraction.
  void sync_severed(SlotIndex s);
  void quarantine_segment(SlotIndex s);
  void renegotiate_capacity();
  void drain_readmissions(SlotIndex s);
  [[nodiscard]] std::int64_t tokens_at(SlotIndex s) const;

  net::Network& net_;
  ResilienceParams params_;
  std::int64_t suspect_window_;  // resolved (params 0 -> window/2)
  ResilienceStats stats_;
  std::array<Tracked, kMaxNodes> tracked_{};
  std::deque<PendingReadmit> queue_;
  /// Quarantined id -> its re-admitted successor (kNoConnection while
  /// queued).  Chains across repeated quarantines.
  std::unordered_map<ConnectionId, ConnectionId> incarnation_;
  // Lazy token bucket, pure slot arithmetic (identical under
  // fast-forward): tokens_ held at slot anchor_, refilled on demand.
  SlotIndex anchor_ = 0;
  std::int64_t tokens_ = 0;
  /// The severed-link view the monitor has acted on; a mismatch with the
  /// network's live view forces slot-by-slot execution until synced
  /// (next_deadline_slot), making the cut hand-off byte-deterministic
  /// through fast-forward.
  LinkSet severed_seen_;
  double capacity_factor_ = 1.0;
};

}  // namespace ccredf::services
