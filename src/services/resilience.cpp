#include "services/resilience.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "ring/segment.hpp"

namespace ccredf::services {

ResilienceMonitor::ResilienceMonitor(net::Network& net,
                                     ResilienceParams params)
    : net_(net), params_(params) {
  params_.validate();
  suspect_window_ = params_.suspect_window_slots > 0
                        ? params_.suspect_window_slots
                        : params_.detection_window_slots / 2;
  CCREDF_EXPECT(net_.resilience_hook() == nullptr,
                "resilience: a hook is already attached");
  const SlotIndex s = net_.current_slot();
  for (NodeId j = 0; j < net_.nodes(); ++j) {
    tracked_[j].last_heard = s - 1;  // zero miss at attachment
  }
  anchor_ = s;
  tokens_ = params_.readmit_burst;
  net_.set_resilience_hook(this);
}

ResilienceMonitor::~ResilienceMonitor() {
  if (net_.resilience_hook() == this) net_.set_resilience_hook(nullptr);
}

ConnectionId ResilienceMonitor::current_incarnation(ConnectionId id) const {
  ConnectionId cur = id;
  auto it = incarnation_.find(cur);
  while (it != incarnation_.end()) {
    cur = it->second;
    if (cur == kNoConnection) return kNoConnection;  // still queued
    it = incarnation_.find(cur);
  }
  return cur;
}

void ResilienceMonitor::on_slot_end(const net::SlotRecord& rec) {
  const SlotIndex s = rec.index;
  if (net_.severed_links() != severed_seen_) sync_severed(s);
  for (NodeId j : rec.heard) heard_node(j, s);
  NodeSet unheard = net_.topology().all_nodes() & ~rec.heard;
  if (!severed_seen_.empty() && !rec.heard.empty()) {
    // Degraded collection truncates at the first severed link in
    // collection order: nodes beyond it wrote no record REGARDLESS of
    // health, so their silence is not evidence.  The contiguous
    // unreachable suffix is excused rather than suspected -- this is
    // what distinguishes the cut's classified loss pattern from a node
    // death's isolated gap.
    const auto& topo = net_.topology();
    NodeId reach = static_cast<NodeId>(net_.nodes() - 1);
    for (const NodeId l : severed_seen_) {
      reach = std::min(reach, topo.hops(rec.master, l));
    }
    for (NodeId h = reach + 1; h < net_.nodes(); ++h) {
      unheard.erase(topo.downstream(rec.master, h));
    }
  }
  for (NodeId j : unheard) {
    Tracked& t = tracked_[j];
    if (t.state == NodeState::kDown) continue;
    const SlotIndex miss = s - t.last_heard;
    if (miss > params_.detection_window_slots) {
      declare_down(j, s);
    } else if (t.state == NodeState::kUp && miss > suspect_window_) {
      t.state = NodeState::kSuspect;
      ++stats_.suspects;
    }
  }
  if (!queue_.empty()) drain_readmissions(s);
}

void ResilienceMonitor::on_fast_forward(SlotIndex first, std::int64_t k,
                                        NodeSet heard) {
  // Every skipped slot evidenced exactly `heard`; unheard nodes cannot
  // cross a detection deadline inside the window (next_deadline_slot
  // bounded the skip), and no DOWN node can sit in `heard` (a live down
  // node forbids skipping entirely), so batching is exact.
  const SlotIndex last = first + k - 1;
  for (NodeId j : heard) {
    Tracked& t = tracked_[j];
    CCREDF_EXPECT(t.state != NodeState::kDown,
                  "resilience: reappearance hidden in a fast-forward");
    t.state = NodeState::kUp;
    t.last_heard = last;
  }
}

SlotIndex ResilienceMonitor::next_deadline_slot(SlotIndex from,
                                                SlotIndex limit) {
  if (net_.severed_links() != severed_seen_) {
    // A cut or splice the monitor has not acted on yet: the very next
    // slot performs the quarantine / renegotiation, so nothing may be
    // skipped over it.  (Scheduled link events inside the window bound
    // the skip via the simulator's event queue; this guard covers the
    // hand-off slot itself.)
    return from;
  }
  SlotIndex bound = limit;
  const NodeSet failed = net_.failed_nodes();
  for (NodeId j = 0; j < net_.nodes(); ++j) {
    const Tracked& t = tracked_[j];
    if (t.state == NodeState::kDown) {
      // A live down node is about to be heard again -- the reappearance
      // (and the queue eligibility it flips) must be simulated.
      if (!failed.contains(j)) return from;
      continue;  // still dead: stays down, nothing to observe
    }
    if (!failed.contains(j)) continue;  // heard every skipped slot
    // Failed but not yet declared: a detection deadline lies ahead.
    const std::int64_t win = t.state == NodeState::kUp
                                 ? suspect_window_
                                 : params_.detection_window_slots;
    bound = std::min(bound, std::max(from, t.last_heard + win + 1));
  }
  if (!queue_.empty()) {
    // A drainable entry means token-bucket pacing and admission re-runs
    // happen on upcoming slots; simulate them (the queue empties in
    // bounded time, so this cannot pin the engine permanently).
    for (const PendingReadmit& p : queue_) {
      if (p.segment) {
        // Segment entries drain once their links are spliced (and the
        // source is not separately down); until then they are inert and
        // cannot pin the engine to slot-by-slot execution.
        if (!p.cut_links.intersects(severed_seen_) &&
            tracked_[p.node].state != NodeState::kDown) {
          return from;
        }
        continue;
      }
      if (tracked_[p.node].state != NodeState::kDown) return from;
    }
  }
  return bound;
}

void ResilienceMonitor::heard_node(NodeId j, SlotIndex s) {
  Tracked& t = tracked_[j];
  if (t.state == NodeState::kDown) ++stats_.reappearances;
  t.state = NodeState::kUp;
  t.last_heard = s;
}

void ResilienceMonitor::declare_down(NodeId j, SlotIndex s) {
  Tracked& t = tracked_[j];
  t.state = NodeState::kDown;
  ++stats_.downs;
  stats_.detection_latency_slots.add(s - t.last_heard);

  // Quarantine: close everything the node sources through the normal
  // teardown paths and verify the released Eq. 5/6 weight matches the
  // utilisation drop exactly (the reclamation invariant E22 gates).
  const double u_before = net_.admission().utilisation();
  double released = 0.0;
  for (const auto& c : net_.connections_of(j)) {
    released += net_.admission().weight(c.params);
    net_.close_connection(c.id);
    ++stats_.connections_quarantined;
    incarnation_[c.id] = kNoConnection;
    PendingReadmit p;
    p.node = j;
    p.is_cbs = false;
    p.rt = c.params;
    p.former_id = c.id;
    p.eligible = s;
    queue_.push_back(std::move(p));
  }
  for (const auto& srv : net_.cbs_servers_of(j)) {
    released += net_.admission().weight(srv.params.admission_params());
    net_.close_cbs_server(srv.id);
    ++stats_.servers_quarantined;
    incarnation_[srv.id] = kNoConnection;
    PendingReadmit p;
    p.node = j;
    p.is_cbs = true;
    p.cbs = srv.params;
    p.former_id = srv.id;
    p.eligible = s;
    queue_.push_back(std::move(p));
  }
  stats_.weight_reclaimed += released;
  const double err =
      std::abs((u_before - net_.admission().utilisation()) - released);
  if (err > stats_.reclaim_error) stats_.reclaim_error = err;
}

void ResilienceMonitor::sync_severed(SlotIndex s) {
  const LinkSet severed = net_.severed_links();
  const bool fresh_cut = !(severed & ~severed_seen_).empty();
  severed_seen_ = severed;
  // Order matters: quarantine releases weight against the OLD capacity,
  // then the renegotiation derates the bound -- the reclaim-exactness
  // invariant is measured before the bound moves.
  if (fresh_cut) quarantine_segment(s);
  renegotiate_capacity();
}

void ResilienceMonitor::quarantine_segment(SlotIndex s) {
  ++stats_.segment_downs;
  const double u_before = net_.admission().utilisation();
  double released = 0.0;
  const auto& topo = net_.topology();
  // Deterministic closure order: sources ascending, each source's
  // connections then CBS servers in id order (both accessors sort) --
  // identical at any sweep thread count.
  for (NodeId j = 0; j < net_.nodes(); ++j) {
    for (const auto& c : net_.connections_of(j)) {
      const auto links =
          ring::Segment::for_transmission(topo, j, c.params.dests).links();
      if (!links.intersects(severed_seen_)) continue;
      released += net_.admission().weight(c.params);
      net_.close_connection(c.id);
      ++stats_.segment_quarantines;
      ++net_.mutable_stats().faults.segment_quarantines;
      incarnation_[c.id] = kNoConnection;
      PendingReadmit p;
      p.node = j;
      p.is_cbs = false;
      p.rt = c.params;
      p.former_id = c.id;
      p.eligible = s;
      p.segment = true;
      p.cut_links = links & severed_seen_;
      queue_.push_back(std::move(p));
    }
    for (const auto& srv : net_.cbs_servers_of(j)) {
      const auto links =
          ring::Segment::for_transmission(topo, j, srv.params.dests).links();
      if (!links.intersects(severed_seen_)) continue;
      released += net_.admission().weight(srv.params.admission_params());
      net_.close_cbs_server(srv.id);
      ++stats_.segment_quarantines;
      ++net_.mutable_stats().faults.segment_quarantines;
      incarnation_[srv.id] = kNoConnection;
      PendingReadmit p;
      p.node = j;
      p.is_cbs = true;
      p.cbs = srv.params;
      p.former_id = srv.id;
      p.eligible = s;
      p.segment = true;
      p.cut_links = links & severed_seen_;
      queue_.push_back(std::move(p));
    }
  }
  stats_.weight_reclaimed += released;
  const double err =
      std::abs((u_before - net_.admission().utilisation()) - released);
  if (err > stats_.reclaim_error) stats_.reclaim_error = err;
}

void ResilienceMonitor::renegotiate_capacity() {
  // Derate Eq. 6 to the surviving-region capacity: the fraction of
  // ordered (src, dst) pairs whose arc avoids every severed link.
  // Closed form for any single cut on any ring size: exactly 0.5 (for
  // each source at h hops before the cut, precisely h of its n-1
  // destinations stay reachable; h sweeps 0..n-1 over the sources).
  double f = 1.0;
  if (!severed_seen_.empty()) {
    const auto& topo = net_.topology();
    const NodeId n = net_.nodes();
    std::int64_t ok = 0;
    for (NodeId a = 0; a < n; ++a) {
      for (NodeId b = 0; b < n; ++b) {
        if (a == b) continue;
        bool crosses = false;
        for (const NodeId l : severed_seen_) {
          // The arc a -> b rides the links of nodes at hops 0..hops-1.
          if (topo.hops(a, l) < topo.hops(a, b)) {
            crosses = true;
            break;
          }
        }
        if (!crosses) ++ok;
      }
    }
    f = static_cast<double>(ok) /
        static_cast<double>(std::int64_t{n} * (n - 1));
  }
  if (f == capacity_factor_) return;
  capacity_factor_ = f;
  ++net_.mutable_stats().faults.admission_renegotiations;
  net_.admission().set_capacity_factor(f);
}

std::int64_t ResilienceMonitor::tokens_at(SlotIndex s) const {
  const std::int64_t refills = (s - anchor_) / params_.readmit_interval_slots;
  return std::min<std::int64_t>(params_.readmit_burst, tokens_ + refills);
}

void ResilienceMonitor::drain_readmissions(SlotIndex s) {
  std::int64_t avail = tokens_at(s);
  if (avail <= 0) return;
  bool spent = false;
  for (auto it = queue_.begin(); it != queue_.end() && avail > 0;) {
    PendingReadmit& p = *it;
    // Entries stay parked while their node is down, their cut links
    // unspliced (segment entries) or their back-off running; the queue
    // is scanned front-to-back so the oldest eligible entry wins the
    // token (FIFO fairness within the staging).
    if (tracked_[p.node].state == NodeState::kDown || s < p.eligible ||
        (p.segment && p.cut_links.intersects(severed_seen_))) {
      ++it;
      continue;
    }
    --avail;
    spent = true;
    ++stats_.readmit_attempts;
    const net::Network::OpenResult r =
        p.is_cbs ? net_.open_cbs_server(p.cbs) : net_.open_connection(p.rt);
    if (r.admitted) {
      ++stats_.readmissions;
      stats_.weight_readmitted +=
          p.is_cbs ? net_.admission().weight(p.cbs.admission_params())
                   : net_.admission().weight(p.rt);
      incarnation_[p.former_id] = r.id;
      it = queue_.erase(it);
    } else {
      ++stats_.readmit_rejections;
      const std::int64_t shift = std::min<std::int64_t>(p.rejections, 30);
      p.eligible = s + std::min(params_.backoff_slots << shift,
                                params_.max_backoff_slots);
      ++p.rejections;
      ++it;
    }
  }
  if (spent) {
    tokens_ = avail;
    anchor_ = s;
  }
}

}  // namespace ccredf::services
