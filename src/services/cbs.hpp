// Constant-Bandwidth-Server flow population + fairness accounting.
//
// The service-level face of the CBS subsystem (core/cbs.hpp holds the
// per-server state machine, net::Network the slot-engine wiring): a
// CbsFlowSet admits a population of identically provisioned servers
// spread around the ring, forwards jobs to them, and computes the Jain
// fairness index over per-flow delivered bytes -- the metric the
// fairness gates of E21 check (J = (sum x)^2 / (n * sum x^2), 1 = all
// flows got identical shares, 1/n = one flow got everything).
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "core/cbs.hpp"
#include "net/network.hpp"

namespace ccredf::services {

struct CbsFlowSetParams {
  /// How many servers to request (admission may reject a tail of them).
  int flows = 8;
  /// Per-server budget Q in slots.
  std::int64_t budget_slots = 2;
  /// Per-server replenishment period T in slots.
  std::int64_t period_slots = 50;
  /// Sources are assigned round-robin starting here.
  NodeId first_source = 0;
  /// Each flow sends to the node this many hops downstream of its
  /// source (wraps; clamped to the ring size).  Short hops maximise
  /// spatial-reuse opportunity, ring-size-1 hops maximise contention.
  NodeId dest_hops = 1;
};

class CbsFlowSet {
 public:
  /// Opens the servers immediately; `net` must outlive the set.  Flows
  /// the admission controller rejects are simply absent from ids().
  CbsFlowSet(net::Network& net, const CbsFlowSetParams& params);

  /// Servers actually admitted (<= params.flows).
  [[nodiscard]] int admitted() const {
    return static_cast<int>(ids_.size());
  }
  /// How many open requests the admission test rejected.
  [[nodiscard]] int rejected() const { return rejected_; }
  [[nodiscard]] const std::vector<ConnectionId>& ids() const { return ids_; }

  /// Submits one job of `size_slots` to admitted flow `flow`.
  MessageId send(std::size_t flow, std::int64_t size_slots);

  /// Jain index over per-flow delivered bytes right now (0 when nothing
  /// was delivered yet).
  [[nodiscard]] double jain_index() const;

  /// Jain index of an arbitrary share vector (exposed for tests and for
  /// sweeps that aggregate shares themselves).
  [[nodiscard]] static double jain(const std::vector<double>& shares);

  /// Closes every remaining server (idempotent).
  void close_all();

 private:
  net::Network& net_;
  std::vector<ConnectionId> ids_;
  int rejected_ = 0;
};

}  // namespace ccredf::services
