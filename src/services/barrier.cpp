#include "services/barrier.hpp"

#include "common/error.hpp"

namespace ccredf::services {

BarrierService::BarrierService(net::Network& net)
    : net_(net), arrival_(net.nodes(), sim::TimePoint::infinity()) {
  net_.add_slot_observer(
      [this](const net::SlotRecord& rec) { on_slot(rec); });
}

void BarrierService::begin(NodeSet participants) {
  CCREDF_EXPECT(!active_, "BarrierService: barrier already in progress");
  CCREDF_EXPECT(!participants.empty(), "BarrierService: empty barrier");
  participants_ = participants;
  pending_ = participants;
  for (auto& a : arrival_) a = sim::TimePoint::infinity();
  last_arrival_ = sim::TimePoint::origin();
  active_ = true;
  complete_ = false;
  completion_.reset();
}

void BarrierService::arrive(NodeId node) {
  CCREDF_EXPECT(active_, "BarrierService: no barrier in progress");
  CCREDF_EXPECT(participants_.contains(node),
                "BarrierService: node is not a participant");
  if (arrival_[node] == sim::TimePoint::infinity()) {
    arrival_[node] = net_.sim().now();
    last_arrival_ = std::max(last_arrival_, arrival_[node]);
  }
}

sim::TimePoint BarrierService::sample_time(const net::SlotRecord& rec,
                                           NodeId node) const {
  return rec.start +
         net_.control_timing().sample_offset_of(rec.master, node);
}

void BarrierService::on_slot(const net::SlotRecord& rec) {
  if (!active_) return;
  // The master collects the flag of every participant whose arrival
  // preceded its sampling instant in this slot.
  NodeSet still_pending;
  for (const NodeId n : pending_) {
    if (arrival_[n] > sample_time(rec, n)) still_pending.insert(n);
  }
  pending_ = still_pending;
  if (pending_.empty()) {
    active_ = false;
    complete_ = true;
    completion_ = rec.end;  // distribution packet ends with the slot
    ++rounds_;
  }
}

std::optional<sim::Duration> BarrierService::latency() const {
  if (!complete_ || !completion_) return std::nullopt;
  return *completion_ - last_arrival_;
}

}  // namespace ccredf::services
