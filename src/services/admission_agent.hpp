// Distributed admission negotiation (paper §6, verbatim):
//   "A specific node in the system is designated to solely handle new
//    logical real-time connections ... Communication with this node is
//    handled with the best effort traffic user service."
//
// Network::open_connection() runs the Eq. 5 test instantaneously (the
// convenient API); this agent adds the paper's message exchange: the
// requester sends a best-effort request to the designated node, the test
// runs when that message ARRIVES, and a best-effort reply notifies the
// requester, which only then sees its callback fire.  Accepted
// connections start releasing after a configurable activation margin so
// no message is released before the source has learned the verdict.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>

#include "common/types.hpp"
#include "core/connection.hpp"
#include "net/network.hpp"
#include "sim/time.hpp"

namespace ccredf::services {

class AdmissionAgent {
 public:
  using Callback = std::function<void(bool admitted, ConnectionId id)>;

  struct Params {
    /// The designated admission-handling node.
    NodeId admission_node = 0;
    /// Laxity of the request/reply best-effort messages, in slots.
    std::int64_t message_laxity_slots = 50;
    /// Extra release offset granted to accepted connections so the first
    /// release never precedes the requester's notification.
    std::int64_t activation_margin_slots = 6;
  };

  AdmissionAgent(net::Network& net, Params params);

  /// Starts a negotiation; `cb` fires when the reply reaches `requester`.
  /// A requester co-located with the admission node skips the exchange
  /// (decision + callback immediately).
  void request(NodeId requester, core::ConnectionParams params, Callback cb);

  [[nodiscard]] std::int64_t requests_sent() const { return sent_; }
  [[nodiscard]] std::int64_t replies_delivered() const { return replied_; }

 private:
  struct PendingRequest {
    NodeId requester = kInvalidNode;
    core::ConnectionParams params;
    Callback cb;
  };
  struct PendingReply {
    bool admitted = false;
    ConnectionId id = kNoConnection;
    Callback cb;
  };

  void on_slot(const net::SlotRecord& rec);
  void decide(PendingRequest req);

  net::Network& net_;
  Params params_;
  std::unordered_map<MessageId, PendingRequest> awaiting_arrival_;
  std::unordered_map<MessageId, PendingReply> awaiting_reply_;
  std::int64_t sent_ = 0;
  std::int64_t replied_ = 0;
};

}  // namespace ccredf::services
