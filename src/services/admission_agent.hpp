// Distributed admission negotiation (paper §6, verbatim):
//   "A specific node in the system is designated to solely handle new
//    logical real-time connections ... Communication with this node is
//    handled with the best effort traffic user service."
//
// Network::open_connection() runs the Eq. 5 test instantaneously (the
// convenient API); this agent adds the paper's message exchange: the
// requester sends a best-effort request to the designated node, the test
// runs when that message ARRIVES, and a best-effort reply notifies the
// requester, which only then sees its callback fire.  Accepted
// connections start releasing after a configurable activation margin so
// no message is released before the source has learned the verdict.
//
// Graceful degradation (health monitor): when `health_window_slots` is
// non-zero the agent also watches the data channel.  Over each window it
// measures the payload-corruption ratio (CRC-rejected transfers over all
// completed transfers); past `derate_threshold` it renegotiates the
// admission bound, scaling U_max by the measured good-put fraction
// (1 - corruption ratio) -- every corrupted transfer comes back as a
// retransmission, so that fraction is exactly the capacity left for
// first transmissions.  The factor recovers to 1 when the channel heals.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"
#include "core/connection.hpp"
#include "net/network.hpp"
#include "sim/time.hpp"

namespace ccredf::services {

class AdmissionAgent {
 public:
  using Callback = std::function<void(bool admitted, ConnectionId id)>;

  struct Params {
    /// The designated admission-handling node.
    NodeId admission_node = 0;
    /// Laxity of the request/reply best-effort messages, in slots.
    std::int64_t message_laxity_slots = 50;
    /// Extra release offset granted to accepted connections so the first
    /// release never precedes the requester's notification.
    std::int64_t activation_margin_slots = 6;
    /// Health-monitor window in slots; 0 disables the monitor.
    std::int64_t health_window_slots = 0;
    /// Corruption ratio at or above which the admission bound is derated.
    double derate_threshold = 0.02;
  };

  AdmissionAgent(net::Network& net, Params params);

  /// Starts a negotiation; `cb` fires when the reply reaches `requester`.
  /// A requester co-located with the admission node skips the exchange
  /// (decision + callback immediately).
  void request(NodeId requester, core::ConnectionParams params, Callback cb);

  [[nodiscard]] std::int64_t requests_sent() const { return sent_; }
  [[nodiscard]] std::int64_t replies_delivered() const { return replied_; }

  // -- health monitor -------------------------------------------------------
  /// The capacity factor currently enforced on the admission bound.
  [[nodiscard]] double capacity_factor() const { return factor_; }
  /// Corruption ratio measured over the last completed window.
  [[nodiscard]] double observed_corruption_rate() const { return last_rate_; }
  /// Times the capacity factor changed (mirrors
  /// FaultStats::admission_renegotiations for this agent).
  [[nodiscard]] std::int64_t renegotiations() const { return renegotiations_; }
  /// Last-window corruption ratio of transfers SOURCED at `node` --
  /// localises a failing link to the upstream transmitter.
  [[nodiscard]] double link_corruption_rate(NodeId node) const;

 private:
  struct PendingRequest {
    NodeId requester = kInvalidNode;
    core::ConnectionParams params;
    Callback cb;
  };
  struct PendingReply {
    bool admitted = false;
    ConnectionId id = kNoConnection;
    Callback cb;
  };

  void on_slot(const net::SlotRecord& rec);
  void decide(PendingRequest req);
  void observe(const net::SlotRecord& rec);
  void close_window();

  net::Network& net_;
  Params params_;
  std::unordered_map<MessageId, PendingRequest> awaiting_arrival_;
  std::unordered_map<MessageId, PendingReply> awaiting_reply_;
  std::int64_t sent_ = 0;
  std::int64_t replied_ = 0;

  // Health-monitor state (untouched when health_window_slots == 0).
  std::int64_t window_slots_ = 0;
  std::int64_t window_total_ = 0;
  std::int64_t window_corrupt_ = 0;
  std::vector<std::int64_t> node_total_;
  std::vector<std::int64_t> node_corrupt_;
  std::vector<double> node_rate_;
  double last_rate_ = 0.0;
  double factor_ = 1.0;
  std::int64_t renegotiations_ = 0;
};

}  // namespace ccredf::services
