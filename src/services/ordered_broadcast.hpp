// Totally-ordered broadcast.
//
// The ring gives a total order for free: every slot has exactly one
// global arbitration outcome, and a broadcast occupies all N-1 links of
// its slot exclusively, so broadcast *transmission slots* form a single
// global sequence that every node observes identically.  The service
// stamps each delivered broadcast with a monotonically increasing
// sequence number derived from that order -- the property group-
// communication layers (replicated state machines, consistent snapshots)
// need, obtained here without any extra protocol round.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_set>
#include <vector>

#include "common/types.hpp"
#include "core/priority.hpp"
#include "net/network.hpp"
#include "sim/time.hpp"

namespace ccredf::services {

class OrderedBroadcast {
 public:
  struct Ordered {
    std::int64_t sequence = 0;  // global total order, starts at 0
    MessageId id = 0;
    NodeId source = kInvalidNode;
    sim::TimePoint delivered;
  };
  /// Called once per node per ordered broadcast, in sequence order.
  using Handler = std::function<void(NodeId self, const Ordered&)>;

  explicit OrderedBroadcast(net::Network& net);

  void set_handler(NodeId node, Handler h);

  /// Broadcasts from `src` (to all other nodes) with total-order
  /// delivery; `relative_deadline` as for best-effort traffic.
  MessageId broadcast(NodeId src, std::int64_t size_slots,
                      sim::Duration relative_deadline);

  [[nodiscard]] std::int64_t delivered() const { return next_sequence_; }

 private:
  void on_slot(const net::SlotRecord& rec);

  net::Network& net_;
  std::vector<Handler> handlers_;
  std::unordered_set<MessageId> mine_;
  std::int64_t next_sequence_ = 0;
};

}  // namespace ccredf::services
