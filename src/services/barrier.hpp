// Barrier synchronisation service (paper §1, §7: "group communication
// such as barrier synchronisation").
//
// Model: each participant sets its barrier flag, which rides the control
// channel in the collection phase of the first slot whose sampling time
// at that node is not earlier than the arrival.  When the master has seen
// every participant's flag, the completion is announced in that slot's
// distribution packet, i.e. at slot end.  No data slots are consumed --
// the service is free-riding on the control channel, exactly the appeal
// of the dedicated control fibre.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/nodeset.hpp"
#include "common/types.hpp"
#include "net/network.hpp"
#include "sim/time.hpp"

namespace ccredf::services {

class BarrierService {
 public:
  /// Registers the service on `net` (slot observer).  `net` must outlive
  /// the service.
  explicit BarrierService(net::Network& net);

  /// Starts a new barrier over `participants`.  Any previous barrier must
  /// have completed.
  void begin(NodeSet participants);

  /// Participant `node` reaches the barrier at current simulated time.
  void arrive(NodeId node);

  [[nodiscard]] bool complete() const { return complete_; }
  /// Slot-end instant at which every node learned of completion.
  [[nodiscard]] std::optional<sim::TimePoint> completion_time() const {
    return completion_;
  }
  /// Completion latency measured from the *last* arrival.
  [[nodiscard]] std::optional<sim::Duration> latency() const;

  [[nodiscard]] std::int64_t barriers_completed() const { return rounds_; }

 private:
  void on_slot(const net::SlotRecord& rec);
  /// Collection sampling instant of `node` in the slot described by `rec`.
  [[nodiscard]] sim::TimePoint sample_time(const net::SlotRecord& rec,
                                           NodeId node) const;

  net::Network& net_;
  NodeSet participants_;
  NodeSet pending_;  // not yet observed by the master
  std::vector<sim::TimePoint> arrival_;
  sim::TimePoint last_arrival_;
  bool active_ = false;
  bool complete_ = false;
  std::optional<sim::TimePoint> completion_;
  std::int64_t rounds_ = 0;
};

}  // namespace ccredf::services
