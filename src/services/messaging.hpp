// Byte-payload messaging on top of the slot-granular network.
//
// The Network moves messages counted in slots; the Messenger maps user
// byte buffers onto slots (ceil(bytes / slot payload)), carries the bytes
// alongside the simulation, and hands them to per-node receive handlers on
// delivery.  Also exposes the "short message" convenience of the paper
// (§1): a single-slot, low-latency unicast.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/nodeset.hpp"
#include "common/types.hpp"
#include "core/message.hpp"
#include "net/network.hpp"

namespace ccredf::services {

class Messenger {
 public:
  struct Received {
    MessageId id = 0;
    NodeId source = kInvalidNode;
    std::vector<std::uint8_t> payload;
    sim::TimePoint completed;
    bool met_deadline = true;
  };
  using Handler = std::function<void(NodeId self, const Received&)>;

  explicit Messenger(net::Network& net);

  /// Receive handler for `node` (one per node).
  void set_handler(NodeId node, Handler h);

  /// Unicast `payload` as the given class; deadline relative to now.
  MessageId send_bytes(NodeId src, NodeId dst,
                       std::span<const std::uint8_t> payload,
                       core::TrafficClass cls,
                       sim::Duration relative_deadline);

  /// Multicast / broadcast variants.
  MessageId multicast_bytes(NodeId src, NodeSet dests,
                            std::span<const std::uint8_t> payload,
                            core::TrafficClass cls,
                            sim::Duration relative_deadline);

  /// Short message: a single-slot best-effort unicast with tight laxity,
  /// the low-latency service for parallel-programming primitives.
  MessageId send_short(NodeId src, NodeId dst,
                       std::span<const std::uint8_t> payload,
                       sim::Duration relative_deadline);

  /// Slots needed for `bytes` of payload on this network.
  [[nodiscard]] std::int64_t slots_for(std::int64_t bytes) const;

  [[nodiscard]] std::int64_t messages_received() const { return received_; }

 private:
  void on_slot(const net::SlotRecord& rec);

  net::Network& net_;
  std::vector<Handler> handlers_;
  std::unordered_map<MessageId, std::vector<std::uint8_t>> payloads_;
  std::int64_t received_ = 0;
};

}  // namespace ccredf::services
