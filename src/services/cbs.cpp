#include "services/cbs.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/nodeset.hpp"

namespace ccredf::services {

CbsFlowSet::CbsFlowSet(net::Network& net, const CbsFlowSetParams& params)
    : net_(net) {
  CCREDF_EXPECT(params.flows >= 1, "CbsFlowSet: need at least one flow");
  CCREDF_EXPECT(params.first_source < net.nodes(),
                "CbsFlowSet: first source out of range");
  const NodeId n = net.nodes();
  const NodeId hops =
      std::max<NodeId>(1, std::min<NodeId>(params.dest_hops, n - 1));
  ids_.reserve(static_cast<std::size_t>(params.flows));
  for (int f = 0; f < params.flows; ++f) {
    core::CbsParams p;
    p.source = static_cast<NodeId>(
        (params.first_source + static_cast<NodeId>(f)) % n);
    p.dests =
        NodeSet::single(net.topology().downstream(p.source, hops));
    p.budget_slots = params.budget_slots;
    p.period_slots = params.period_slots;
    const auto r = net.open_cbs_server(p);
    if (r.admitted) {
      ids_.push_back(r.id);
    } else {
      ++rejected_;
    }
  }
}

MessageId CbsFlowSet::send(std::size_t flow, std::int64_t size_slots) {
  CCREDF_EXPECT(flow < ids_.size(), "CbsFlowSet: flow index out of range");
  return net_.cbs_send(ids_[flow], size_slots);
}

double CbsFlowSet::jain(const std::vector<double>& shares) {
  if (shares.empty()) return 0.0;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (const double x : shares) {
    sum += x;
    sum_sq += x * x;
  }
  if (sum_sq == 0.0) return 0.0;
  return sum * sum / (static_cast<double>(shares.size()) * sum_sq);
}

double CbsFlowSet::jain_index() const {
  std::vector<double> shares;
  shares.reserve(ids_.size());
  for (const ConnectionId id : ids_) {
    shares.push_back(
        static_cast<double>(net_.connection_stats(id).bytes));
  }
  return jain(shares);
}

void CbsFlowSet::close_all() {
  for (const ConnectionId id : ids_) net_.close_cbs_server(id);
  ids_.clear();
}

}  // namespace ccredf::services
