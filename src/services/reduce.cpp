#include "services/reduce.hpp"

#include <algorithm>
#include <limits>

#include "common/error.hpp"

namespace ccredf::services {

std::int64_t apply_reduce(ReduceOp op, std::int64_t a, std::int64_t b) {
  switch (op) {
    case ReduceOp::kSum:
      return a + b;
    case ReduceOp::kMin:
      return std::min(a, b);
    case ReduceOp::kMax:
      return std::max(a, b);
    case ReduceOp::kBitAnd:
      return a & b;
    case ReduceOp::kBitOr:
      return a | b;
  }
  return a;
}

std::int64_t reduce_identity(ReduceOp op) {
  switch (op) {
    case ReduceOp::kSum:
      return 0;
    case ReduceOp::kMin:
      return std::numeric_limits<std::int64_t>::max();
    case ReduceOp::kMax:
      return std::numeric_limits<std::int64_t>::min();
    case ReduceOp::kBitAnd:
      return -1;  // all ones
    case ReduceOp::kBitOr:
      return 0;
  }
  return 0;
}

GlobalReduceService::GlobalReduceService(net::Network& net)
    : net_(net),
      value_(net.nodes(), 0),
      contributed_(net.nodes(), sim::TimePoint::infinity()) {
  net_.add_slot_observer(
      [this](const net::SlotRecord& rec) { on_slot(rec); });
}

void GlobalReduceService::begin(NodeSet participants, ReduceOp op) {
  CCREDF_EXPECT(!active_, "GlobalReduceService: round already in progress");
  CCREDF_EXPECT(!participants.empty(), "GlobalReduceService: empty group");
  participants_ = participants;
  pending_ = participants;
  op_ = op;
  accumulator_ = reduce_identity(op);
  for (auto& c : contributed_) c = sim::TimePoint::infinity();
  active_ = true;
  complete_ = false;
  result_.reset();
  completion_.reset();
}

void GlobalReduceService::contribute(NodeId node, std::int64_t value) {
  CCREDF_EXPECT(active_, "GlobalReduceService: no round in progress");
  CCREDF_EXPECT(participants_.contains(node),
                "GlobalReduceService: node not in group");
  if (contributed_[node] == sim::TimePoint::infinity()) {
    contributed_[node] = net_.sim().now();
    value_[node] = value;
  }
}

sim::TimePoint GlobalReduceService::sample_time(const net::SlotRecord& rec,
                                                NodeId node) const {
  return rec.start +
         net_.control_timing().sample_offset_of(rec.master, node);
}

void GlobalReduceService::on_slot(const net::SlotRecord& rec) {
  if (!active_) return;
  NodeSet still_pending;
  for (const NodeId n : pending_) {
    if (contributed_[n] > sample_time(rec, n)) {
      still_pending.insert(n);
    } else {
      accumulator_ = apply_reduce(op_, accumulator_, value_[n]);
    }
  }
  pending_ = still_pending;
  if (pending_.empty()) {
    active_ = false;
    complete_ = true;
    result_ = accumulator_;
    completion_ = rec.end;
    ++rounds_;
  }
}

}  // namespace ccredf::services
