#include "services/reliable.hpp"

#include <string>
#include <utility>

#include "common/error.hpp"

namespace ccredf::services {

ReliableChannel::ReliableChannel(net::Network& net, Params params)
    : net_(net), params_(params), rng_(params.seed) {
  CCREDF_EXPECT(params_.loss_probability >= 0.0 &&
                    params_.loss_probability < 1.0,
                "ReliableChannel: loss probability out of [0,1)");
  CCREDF_EXPECT(params_.timeout_slots >= 1,
                "ReliableChannel: timeout must be at least one slot");
  CCREDF_EXPECT(params_.ack_margin_slots >= 0,
                "ReliableChannel: ack margin cannot be negative");
  if (params_.loss_probability > 0.0) {
    net_.trace().emit(net_.sim().now(), sim::TraceCategory::kService, [] {
      return std::string(
          "ReliableChannel: loss_probability is deprecated -- prefer "
          "FaultInjector::set_data_ber with with_payload_crc");
    });
  }
  net_.add_slot_observer(
      [this](const net::SlotRecord& rec) { on_slot(rec); });
}

sim::Duration ReliableChannel::timeout() const {
  return net_.timing().slot_plus_max_gap() * params_.timeout_slots;
}

bool ReliableChannel::budget_covers_attempt(const Transfer& t) const {
  if (!params_.laxity_budgeted || t.deadline == sim::TimePoint::infinity()) {
    return true;
  }
  // One more attempt costs size_slots of data plus the ack/NACK round,
  // each a worst-case slot extent; anything less and the repeat cannot
  // land before the deadline -- it would only steal slots from messages
  // that can still make it.
  const sim::Duration budget =
      net_.timing().slot_plus_max_gap() *
      (t.size_slots + params_.ack_margin_slots);
  return t.deadline - net_.sim().now() >= budget;
}

MessageId ReliableChannel::send(NodeId src, NodeId dst,
                                std::int64_t size_slots,
                                sim::Duration relative_deadline,
                                CompletionCallback cb) {
  CCREDF_EXPECT(src != dst, "ReliableChannel: src == dst");
  Transfer t;
  t.src = src;
  t.dst = dst;
  t.size_slots = size_slots;
  t.relative_deadline = relative_deadline;
  t.deadline = relative_deadline >= sim::Duration::infinity()
                   ? sim::TimePoint::infinity()
                   : net_.sim().now() + relative_deadline;
  t.cb = std::move(cb);
  ++started_;
  // The ack timeout starts only when the sender observes its own
  // transmission complete (it clocked the data out itself), so queueing
  // delay can never trigger a spurious retransmission.
  t.current_attempt = net_.send_best_effort(src, NodeSet::single(dst),
                                            size_slots, relative_deadline);
  t.transfer_id = t.current_attempt;
  t.attempts = 1;
  by_attempt_.emplace(t.current_attempt, t.transfer_id);
  const MessageId id = t.transfer_id;
  live_.emplace(id, std::move(t));
  return id;
}

void ReliableChannel::attempt(Transfer& t) {
  // Re-enter EDF at the TRUE remaining laxity: the repeat is more
  // urgent than the original release was, and the arbiter should see
  // that (fixed-retry mode keeps the original relative deadline).
  sim::Duration rel = t.relative_deadline;
  if (params_.laxity_budgeted && t.deadline != sim::TimePoint::infinity()) {
    rel = t.deadline - net_.sim().now();
  }
  t.current_attempt =
      net_.send_best_effort(t.src, NodeSet::single(t.dst), t.size_slots, rel);
  ++t.attempts;
  ++retx_;
  by_attempt_.emplace(t.current_attempt, t.transfer_id);
}

void ReliableChannel::finish(Transfer& t, bool delivered, bool abandoned,
                             sim::TimePoint completed) {
  TransferResult r{t.transfer_id, delivered,  abandoned,
                   t.attempts,    completed, t.deadline};
  if (delivered) {
    ++delivered_;
  } else {
    ++failed_;
    if (abandoned) ++abandoned_;
  }
  auto cb = std::move(t.cb);
  live_.erase(t.transfer_id);
  if (cb) cb(r);
}

ReliableChannel::Transfer* ReliableChannel::claim_attempt(MessageId id) {
  const auto ait = by_attempt_.find(id);
  if (ait == by_attempt_.end()) return nullptr;
  const MessageId transfer_id = ait->second;
  by_attempt_.erase(ait);
  const auto it = live_.find(transfer_id);
  if (it == live_.end()) return nullptr;
  Transfer& t = it->second;
  if (id != t.current_attempt) return nullptr;  // stale attempt
  return &t;
}

void ReliableChannel::on_slot(const net::SlotRecord& rec) {
  for (const core::Delivery& d : rec.deliveries) {
    Transfer* tp = claim_attempt(d.id);
    if (tp == nullptr) continue;
    Transfer& t = *tp;

    if (params_.loss_probability > 0.0 &&
        rng_.bernoulli(params_.loss_probability)) {
      // Legacy synthetic corruption: the destination stays silent.  The
      // sender saw its transmission complete; with no ack after the
      // timeout it decides between retransmission and giving up.
      const MessageId transfer_id = t.transfer_id;
      t.timeout_event = net_.sim().schedule_in(
          timeout(), [this, transfer_id] { on_resolve(transfer_id); });
      continue;
    }
    // Ack rides the next distribution packet; the sender knows at the
    // following slot end, approximately one slot extent after delivery.
    finish(t, true, false, d.completed + net_.timing().slot_plus_max_gap());
  }

  // Physical path: the receivers' payload CRC rejected the transfer and
  // the source is NACKed on the NEXT distribution packet -- the sender
  // decides one slot extent after the corrupted delivery would have
  // landed, no timeout involved.
  for (const core::Delivery& d : rec.corrupt_deliveries) {
    Transfer* tp = claim_attempt(d.id);
    if (tp == nullptr) continue;
    ++nacks_;
    const MessageId transfer_id = tp->transfer_id;
    tp->timeout_event = net_.sim().schedule_in(
        net_.timing().slot_plus_max_gap(),
        [this, transfer_id] { on_resolve(transfer_id); });
  }
}

void ReliableChannel::on_resolve(MessageId transfer_id) {
  const auto it = live_.find(transfer_id);
  if (it == live_.end()) return;
  Transfer& t = it->second;
  if (params_.max_attempts > 0 && t.attempts >= params_.max_attempts) {
    finish(t, false, false, net_.sim().now());
    return;
  }
  if (!budget_covers_attempt(t)) {
    // Hopeless: the remaining laxity cannot cover one more attempt.
    // Abandon now rather than burn slots other messages still need.
    finish(t, false, true, net_.sim().now());
    return;
  }
  attempt(t);
}

}  // namespace ccredf::services
