#include "services/reliable.hpp"

#include "common/error.hpp"

namespace ccredf::services {

ReliableChannel::ReliableChannel(net::Network& net, Params params)
    : net_(net), params_(params), rng_(params.seed) {
  CCREDF_EXPECT(params_.loss_probability >= 0.0 &&
                    params_.loss_probability < 1.0,
                "ReliableChannel: loss probability out of [0,1)");
  CCREDF_EXPECT(params_.timeout_slots >= 1,
                "ReliableChannel: timeout must be at least one slot");
  net_.add_slot_observer(
      [this](const net::SlotRecord& rec) { on_slot(rec); });
}

sim::Duration ReliableChannel::timeout() const {
  return net_.timing().slot_plus_max_gap() * params_.timeout_slots;
}

MessageId ReliableChannel::send(NodeId src, NodeId dst,
                                std::int64_t size_slots,
                                sim::Duration relative_deadline,
                                CompletionCallback cb) {
  CCREDF_EXPECT(src != dst, "ReliableChannel: src == dst");
  Transfer t;
  t.src = src;
  t.dst = dst;
  t.size_slots = size_slots;
  t.relative_deadline = relative_deadline;
  t.cb = std::move(cb);
  ++started_;
  // The ack timeout starts only when the sender observes its own
  // transmission complete (it clocked the data out itself), so queueing
  // delay can never trigger a spurious retransmission.
  t.current_attempt = net_.send_best_effort(src, NodeSet::single(dst),
                                            size_slots, relative_deadline);
  t.transfer_id = t.current_attempt;
  t.attempts = 1;
  by_attempt_.emplace(t.current_attempt, t.transfer_id);
  const MessageId id = t.transfer_id;
  live_.emplace(id, std::move(t));
  return id;
}

void ReliableChannel::attempt(Transfer& t) {
  t.current_attempt = net_.send_best_effort(
      t.src, NodeSet::single(t.dst), t.size_slots, t.relative_deadline);
  ++t.attempts;
  ++retx_;
  by_attempt_.emplace(t.current_attempt, t.transfer_id);
}

void ReliableChannel::on_slot(const net::SlotRecord& rec) {
  for (const core::Delivery& d : rec.deliveries) {
    const auto ait = by_attempt_.find(d.id);
    if (ait == by_attempt_.end()) continue;
    const MessageId transfer_id = ait->second;
    by_attempt_.erase(ait);
    const auto it = live_.find(transfer_id);
    if (it == live_.end()) continue;
    Transfer& t = it->second;
    if (d.id != t.current_attempt) continue;  // stale attempt

    if (!rng_.bernoulli(params_.loss_probability)) {
      // Ack rides the next distribution packet; the sender knows at the
      // following slot end, approximately one slot extent after delivery.
      TransferResult r{t.transfer_id, true, t.attempts,
                       d.completed + net_.timing().slot_plus_max_gap()};
      ++delivered_;
      auto cb = std::move(t.cb);
      live_.erase(it);
      if (cb) cb(r);
      continue;
    }

    // Corrupted transfer: the destination stays silent.  The sender saw
    // its transmission complete; with no ack after the timeout it
    // retransmits (or gives up at the attempt cap).
    if (params_.max_attempts > 0 && t.attempts >= params_.max_attempts) {
      TransferResult r{t.transfer_id, false, t.attempts, net_.sim().now()};
      ++failed_;
      auto cb = std::move(t.cb);
      live_.erase(it);
      if (cb) cb(r);
      continue;
    }
    t.timeout_event = net_.sim().schedule_in(
        timeout(), [this, transfer_id] { on_timeout(transfer_id); });
  }
}

void ReliableChannel::on_timeout(MessageId transfer_id) {
  const auto it = live_.find(transfer_id);
  if (it == live_.end()) return;
  attempt(it->second);
}

}  // namespace ccredf::services
