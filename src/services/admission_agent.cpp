#include "services/admission_agent.hpp"

#include "common/error.hpp"

namespace ccredf::services {

AdmissionAgent::AdmissionAgent(net::Network& net, Params params)
    : net_(net), params_(params) {
  CCREDF_EXPECT(params_.admission_node < net.nodes(),
                "AdmissionAgent: admission node out of range");
  CCREDF_EXPECT(params_.message_laxity_slots >= 1,
                "AdmissionAgent: message laxity must be >= 1 slot");
  CCREDF_EXPECT(params_.activation_margin_slots >= 0,
                "AdmissionAgent: negative activation margin");
  net_.add_slot_observer(
      [this](const net::SlotRecord& rec) { on_slot(rec); });
}

void AdmissionAgent::decide(PendingRequest req) {
  // The test runs at the admission node, now.  Accepted connections get
  // the activation margin so the first release follows the notification.
  core::ConnectionParams p = req.params;
  p.offset_slots += params_.activation_margin_slots;
  const auto result = net_.open_connection(p);

  if (req.requester == params_.admission_node) {
    ++replied_;
    if (req.cb) req.cb(result.admitted, result.id);
    return;
  }
  // Reply rides best effort back to the requester (paper §6).
  const MessageId reply = net_.send_best_effort(
      params_.admission_node, NodeSet::single(req.requester), 1,
      net_.timing().slot() * params_.message_laxity_slots);
  awaiting_reply_.emplace(
      reply, PendingReply{result.admitted, result.id, std::move(req.cb)});
}

void AdmissionAgent::request(NodeId requester,
                             core::ConnectionParams params, Callback cb) {
  CCREDF_EXPECT(requester < net_.nodes(), "AdmissionAgent: bad requester");
  ++sent_;
  PendingRequest req{requester, std::move(params), std::move(cb)};
  if (requester == params_.admission_node) {
    decide(std::move(req));  // co-located: no message exchange
    return;
  }
  const MessageId msg = net_.send_best_effort(
      requester, NodeSet::single(params_.admission_node), 1,
      net_.timing().slot() * params_.message_laxity_slots);
  awaiting_arrival_.emplace(msg, std::move(req));
}

void AdmissionAgent::on_slot(const net::SlotRecord& rec) {
  for (const core::Delivery& d : rec.deliveries) {
    if (const auto it = awaiting_arrival_.find(d.id);
        it != awaiting_arrival_.end()) {
      PendingRequest req = std::move(it->second);
      awaiting_arrival_.erase(it);
      decide(std::move(req));
      continue;
    }
    if (const auto it = awaiting_reply_.find(d.id);
        it != awaiting_reply_.end()) {
      PendingReply reply = std::move(it->second);
      awaiting_reply_.erase(it);
      ++replied_;
      if (reply.cb) reply.cb(reply.admitted, reply.id);
    }
  }
}

}  // namespace ccredf::services
