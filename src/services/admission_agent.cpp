#include "services/admission_agent.hpp"

#include <sstream>

#include "common/error.hpp"

namespace ccredf::services {

AdmissionAgent::AdmissionAgent(net::Network& net, Params params)
    : net_(net), params_(params) {
  CCREDF_EXPECT(params_.admission_node < net.nodes(),
                "AdmissionAgent: admission node out of range");
  CCREDF_EXPECT(params_.message_laxity_slots >= 1,
                "AdmissionAgent: message laxity must be >= 1 slot");
  CCREDF_EXPECT(params_.activation_margin_slots >= 0,
                "AdmissionAgent: negative activation margin");
  CCREDF_EXPECT(params_.health_window_slots >= 0,
                "AdmissionAgent: negative health window");
  CCREDF_EXPECT(params_.derate_threshold > 0.0 &&
                    params_.derate_threshold <= 1.0,
                "AdmissionAgent: derate threshold out of (0,1]");
  if (params_.health_window_slots > 0) {
    node_total_.assign(net_.nodes(), 0);
    node_corrupt_.assign(net_.nodes(), 0);
    node_rate_.assign(net_.nodes(), 0.0);
  }
  net_.add_slot_observer(
      [this](const net::SlotRecord& rec) { on_slot(rec); });
}

void AdmissionAgent::decide(PendingRequest req) {
  // The test runs at the admission node, now.  Accepted connections get
  // the activation margin so the first release follows the notification.
  core::ConnectionParams p = req.params;
  p.offset_slots += params_.activation_margin_slots;
  const auto result = net_.open_connection(p);

  if (req.requester == params_.admission_node) {
    ++replied_;
    if (req.cb) req.cb(result.admitted, result.id);
    return;
  }
  // Reply rides best effort back to the requester (paper §6).
  const MessageId reply = net_.send_best_effort(
      params_.admission_node, NodeSet::single(req.requester), 1,
      net_.timing().slot() * params_.message_laxity_slots);
  awaiting_reply_.emplace(
      reply, PendingReply{result.admitted, result.id, std::move(req.cb)});
}

void AdmissionAgent::request(NodeId requester,
                             core::ConnectionParams params, Callback cb) {
  CCREDF_EXPECT(requester < net_.nodes(), "AdmissionAgent: bad requester");
  ++sent_;
  PendingRequest req{requester, std::move(params), std::move(cb)};
  if (requester == params_.admission_node) {
    decide(std::move(req));  // co-located: no message exchange
    return;
  }
  const MessageId msg = net_.send_best_effort(
      requester, NodeSet::single(params_.admission_node), 1,
      net_.timing().slot() * params_.message_laxity_slots);
  awaiting_arrival_.emplace(msg, std::move(req));
}

void AdmissionAgent::on_slot(const net::SlotRecord& rec) {
  for (const core::Delivery& d : rec.deliveries) {
    if (const auto it = awaiting_arrival_.find(d.id);
        it != awaiting_arrival_.end()) {
      PendingRequest req = std::move(it->second);
      awaiting_arrival_.erase(it);
      decide(std::move(req));
      continue;
    }
    if (const auto it = awaiting_reply_.find(d.id);
        it != awaiting_reply_.end()) {
      PendingReply reply = std::move(it->second);
      awaiting_reply_.erase(it);
      ++replied_;
      if (reply.cb) reply.cb(reply.admitted, reply.id);
    }
  }
  if (params_.health_window_slots > 0) observe(rec);
}

void AdmissionAgent::observe(const net::SlotRecord& rec) {
  window_total_ += static_cast<std::int64_t>(rec.deliveries.size()) +
                   static_cast<std::int64_t>(rec.corrupt_deliveries.size());
  window_corrupt_ +=
      static_cast<std::int64_t>(rec.corrupt_deliveries.size());
  for (const core::Delivery& d : rec.deliveries) ++node_total_[d.source];
  for (const core::Delivery& d : rec.corrupt_deliveries) {
    ++node_total_[d.source];
    ++node_corrupt_[d.source];
  }
  if (++window_slots_ < params_.health_window_slots) return;
  close_window();
}

void AdmissionAgent::close_window() {
  last_rate_ = window_total_ == 0
                   ? 0.0
                   : static_cast<double>(window_corrupt_) /
                         static_cast<double>(window_total_);
  for (NodeId i = 0; i < net_.nodes(); ++i) {
    node_rate_[i] = node_total_[i] == 0
                        ? 0.0
                        : static_cast<double>(node_corrupt_[i]) /
                              static_cast<double>(node_total_[i]);
    node_total_[i] = 0;
    node_corrupt_[i] = 0;
  }
  window_slots_ = 0;
  window_total_ = 0;
  window_corrupt_ = 0;

  // Every corrupted transfer returns as a retransmission, so the
  // fraction of capacity left for first transmissions is (1 - rate):
  // derate the admission bound to exactly that.  Below the threshold
  // the channel is considered healthy and full capacity is restored.
  const double target =
      last_rate_ >= params_.derate_threshold ? 1.0 - last_rate_ : 1.0;
  if (target == factor_) return;
  factor_ = target;
  ++renegotiations_;
  ++net_.mutable_stats().faults.admission_renegotiations;
  net_.admission().set_capacity_factor(factor_);
  net_.trace().emit(net_.sim().now(), sim::TraceCategory::kAdmission, [&] {
    std::ostringstream os;
    os << "health monitor: corruption rate " << last_rate_
       << " -> capacity factor " << factor_ << " (effective U_max "
       << net_.admission().effective_u_max() << ")";
    return os.str();
  });
}

double AdmissionAgent::link_corruption_rate(NodeId node) const {
  CCREDF_EXPECT(node < net_.nodes(), "AdmissionAgent: node out of range");
  return node_rate_.empty() ? 0.0 : node_rate_[node];
}

}  // namespace ccredf::services
