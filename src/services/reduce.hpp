// Global reduction service (paper §1, §7: "global reduction").
//
// Each participant contributes a 64-bit operand; the contribution rides
// the collection phase (like the barrier flags), the master folds the
// operands with the chosen operator, and the result is broadcast in the
// distribution packet of the slot in which the last contribution arrived
// -- so every node holds the result at that slot's end.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/nodeset.hpp"
#include "common/types.hpp"
#include "net/network.hpp"
#include "sim/time.hpp"

namespace ccredf::services {

enum class ReduceOp { kSum, kMin, kMax, kBitAnd, kBitOr };

[[nodiscard]] std::int64_t apply_reduce(ReduceOp op, std::int64_t a,
                                        std::int64_t b);
[[nodiscard]] std::int64_t reduce_identity(ReduceOp op);

class GlobalReduceService {
 public:
  explicit GlobalReduceService(net::Network& net);

  /// Starts a reduction round over `participants` with operator `op`.
  void begin(NodeSet participants, ReduceOp op);

  /// Participant `node` contributes `value` at current simulated time.
  void contribute(NodeId node, std::int64_t value);

  [[nodiscard]] bool complete() const { return complete_; }
  [[nodiscard]] std::optional<std::int64_t> result() const { return result_; }
  [[nodiscard]] std::optional<sim::TimePoint> completion_time() const {
    return completion_;
  }
  [[nodiscard]] std::int64_t rounds_completed() const { return rounds_; }

 private:
  void on_slot(const net::SlotRecord& rec);
  [[nodiscard]] sim::TimePoint sample_time(const net::SlotRecord& rec,
                                           NodeId node) const;

  net::Network& net_;
  NodeSet participants_;
  NodeSet pending_;
  ReduceOp op_ = ReduceOp::kSum;
  std::vector<std::int64_t> value_;
  std::vector<sim::TimePoint> contributed_;
  std::int64_t accumulator_ = 0;
  bool active_ = false;
  bool complete_ = false;
  std::optional<std::int64_t> result_;
  std::optional<sim::TimePoint> completion_;
  std::int64_t rounds_ = 0;
};

}  // namespace ccredf::services
