// Credit-based flow control (paper §1: intrinsic flow-control service).
//
// Each (source, destination) pair holds a credit window measured in
// messages.  A send consumes a credit; when none is available the message
// waits in the service's pending queue.  Credits return when the receiver
// has consumed the delivery, modelled as one slot extent after delivery
// (the credit rides the control channel back).
#pragma once

#include <cstdint>
#include <deque>
#include <map>

#include "common/types.hpp"
#include "core/priority.hpp"
#include "net/network.hpp"
#include "sim/time.hpp"

namespace ccredf::services {

class CreditFlowControl {
 public:
  /// `window` credits per (src, dst) pair.
  CreditFlowControl(net::Network& net, int window);

  /// Sends when a credit is available, otherwise queues the message; the
  /// queue drains automatically as credits return.  Returns true when the
  /// message was sent immediately.
  bool send(NodeId src, NodeId dst, std::int64_t size_slots,
            sim::Duration relative_deadline);

  [[nodiscard]] int credits(NodeId src, NodeId dst) const;
  [[nodiscard]] std::size_t blocked(NodeId src, NodeId dst) const;
  [[nodiscard]] std::int64_t sends_blocked_total() const { return blocked_; }

 private:
  struct PendingSend {
    std::int64_t size_slots;
    sim::Duration relative_deadline;
  };
  using Pair = std::pair<NodeId, NodeId>;

  void on_slot(const net::SlotRecord& rec);
  void dispatch(NodeId src, NodeId dst, const PendingSend& p);

  net::Network& net_;
  int window_;
  std::map<Pair, int> credits_;
  std::map<Pair, std::deque<PendingSend>> pending_;
  /// In-flight message id -> pair, to return the credit on delivery.
  std::map<MessageId, Pair> in_flight_;
  std::int64_t blocked_ = 0;
};

}  // namespace ccredf::services
