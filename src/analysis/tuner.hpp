// Slot-size tuning (an engineering aid for the paper's §4 trade-off).
//
// A longer slot amortises the hand-over gap (raising U_max, Eq. 6) but
// stretches the worst-case protocol latency (Eq. 4) and the deadline
// granularity ("the smallest time unit is a slot", §5).  The tuner picks
// the largest payload whose Eq. 4 latency stays within a target, subject
// to the Eq. 2 minimum and the control-frame bit budget.
#pragma once

#include <cstdint>

#include "core/frames.hpp"
#include "core/schedulability.hpp"
#include "phy/ring_phy.hpp"
#include "sim/time.hpp"

namespace ccredf::analysis {

struct SlotTuning {
  /// False when even the smallest legal slot violates the latency target.
  bool feasible = false;
  std::int64_t payload_bytes = 0;
  double u_max = 0.0;
  sim::Duration slot = sim::Duration::zero();
  sim::Duration worst_case_latency = sim::Duration::zero();
};

/// Largest payload with Eq. 4 worst-case latency <= `latency_target`.
/// When infeasible, the returned tuning describes the smallest legal slot
/// so callers can report how far off the target is.
[[nodiscard]] SlotTuning tune_slot_size(const phy::RingPhy& phy,
                                        const core::FrameCodec& codec,
                                        sim::Duration latency_target);

/// Smallest payload legal for this ring and codec: the max of the Eq. 2
/// propagation minimum and the control-frame bit budget.
[[nodiscard]] std::int64_t min_legal_payload(const phy::RingPhy& phy,
                                             const core::FrameCodec& codec);

}  // namespace ccredf::analysis
