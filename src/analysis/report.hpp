// ASCII table/series rendering for the experiment harness.
//
// Every bench prints its results through Table so the output of
// `for b in build/bench/*; do $b; done` reads as the paper's tables and
// figure series, one block per experiment.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace ccredf::analysis {

class Table {
 public:
  explicit Table(std::string title) : title_(std::move(title)) {}

  /// Defines the column headers; call once, before add_row.
  void columns(std::vector<std::string> headers);

  class Row {
   public:
    explicit Row(Table& t) : t_(t) {}
    Row& cell(const std::string& s);
    Row& cell(const char* s) { return cell(std::string(s)); }
    Row& cell(double v, int precision = 3);
    Row& cell(std::int64_t v);
    Row& cell(int v) { return cell(static_cast<std::int64_t>(v)); }
    Row& pct(double fraction, int precision = 2);  // renders "12.34%"

   private:
    Table& t_;
  };

  /// Starts a new row; fill it with chained cell() calls.
  Row row();

  /// A full-width annotation line under the last row.
  void note(std::string text);

  /// Prints the ASCII rendering.  When the environment variable
  /// CCREDF_RESULTS_DIR is set, also writes `<dir>/<slug(title)>.csv`
  /// so every table/series doubles as machine-readable figure data.
  void print(std::ostream& os) const;
  [[nodiscard]] std::string str() const;

  /// Comma-separated rendering (RFC-4180-style quoting).
  [[nodiscard]] std::string csv() const;
  /// Writes csv() to `path`; returns false on I/O failure.
  bool export_csv(const std::string& path) const;

  [[nodiscard]] std::size_t row_count() const { return cells_.size(); }

 private:
  friend class Row;
  std::string title_;
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> cells_;
  std::vector<std::pair<std::size_t, std::string>> notes_;  // after row i
};

/// Convenience formatters shared by benches.
[[nodiscard]] std::string format_si(double v, const char* unit);

}  // namespace ccredf::analysis
