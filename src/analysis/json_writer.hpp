// Deterministic JSON emission for machine-readable reports.
//
// The sweep runner's contract is that the aggregated report is
// byte-identical regardless of worker-thread count, so every number must
// render identically on every run.  Doubles are printed with
// std::to_chars (shortest round-trip form) which is locale-independent
// and fully determined by the double's bit pattern; NaN/inf (which JSON
// cannot represent) become null.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace ccredf::analysis {

/// Shortest round-trip rendering of `v`, or "null" when not finite.
[[nodiscard]] std::string json_number(double v);

/// RFC 8259 string escaping (quotes included).
[[nodiscard]] std::string json_quote(std::string_view s);

/// Streaming writer producing compact, key-ordered-as-written JSON.
/// Usage:
///   JsonWriter w(os);
///   w.begin_object();
///   w.key("points").begin_array();
///   ...
///   w.end_array();
///   w.end_object();
/// Commas are inserted automatically; the caller provides structure.
class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& os) : os_(os) {}

  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Writes `"name":`; must be followed by exactly one value.
  JsonWriter& key(std::string_view name);

  JsonWriter& value(double v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(bool v);
  JsonWriter& value(std::string_view s);
  JsonWriter& value(const char* s) { return value(std::string_view(s)); }

 private:
  void separate();

  std::ostream& os_;
  // One entry per open container: whether a value was already written
  // (i.e. the next sibling needs a comma prefix).
  std::vector<bool> has_prev_;
  bool after_key_ = false;
};

}  // namespace ccredf::analysis
