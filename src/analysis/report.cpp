#include "analysis/report.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "common/error.hpp"

namespace ccredf::analysis {

void Table::columns(std::vector<std::string> headers) {
  CCREDF_EXPECT(headers_.empty(), "Table: columns already set");
  headers_ = std::move(headers);
}

Table::Row Table::row() {
  CCREDF_EXPECT(!headers_.empty(), "Table: set columns first");
  cells_.emplace_back();
  return Row(*this);
}

Table::Row& Table::Row::cell(const std::string& s) {
  t_.cells_.back().push_back(s);
  return *this;
}

Table::Row& Table::Row::cell(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return cell(os.str());
}

Table::Row& Table::Row::cell(std::int64_t v) {
  return cell(std::to_string(v));
}

Table::Row& Table::Row::pct(double fraction, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << fraction * 100.0
     << "%";
  return cell(os.str());
}

void Table::note(std::string text) {
  notes_.emplace_back(cells_.size(), std::move(text));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    width[c] = headers_[c].size();
  }
  for (const auto& row : cells_) {
    for (std::size_t c = 0; c < row.size() && c < width.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }

  os << "== " << title_ << " ==\n";
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < width.size(); ++c) {
      const std::string& v = c < row.size() ? row[c] : std::string();
      os << (c == 0 ? "" : "  ") << std::setw(static_cast<int>(width[c]))
         << v;
    }
    os << "\n";
  };
  print_row(headers_);
  std::size_t total = 0;
  for (const auto w : width) total += w + 2;
  os << std::string(total > 2 ? total - 2 : total, '-') << "\n";

  std::size_t note_idx = 0;
  for (std::size_t r = 0; r < cells_.size(); ++r) {
    while (note_idx < notes_.size() && notes_[note_idx].first == r) {
      os << "  # " << notes_[note_idx].second << "\n";
      ++note_idx;
    }
    print_row(cells_[r]);
  }
  while (note_idx < notes_.size()) {
    os << "  # " << notes_[note_idx].second << "\n";
    ++note_idx;
  }

  if (const char* dir = std::getenv("CCREDF_RESULTS_DIR")) {
    std::string slug;
    for (const char ch : title_) {
      if (std::isalnum(static_cast<unsigned char>(ch))) {
        slug += static_cast<char>(
            std::tolower(static_cast<unsigned char>(ch)));
      } else if (!slug.empty() && slug.back() != '-') {
        slug += '-';
      }
    }
    while (!slug.empty() && slug.back() == '-') slug.pop_back();
    (void)export_csv(std::string(dir) + "/" + slug + ".csv");
  }
}

namespace {
std::string csv_escape(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (const char c : s) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}
}  // namespace

std::string Table::csv() const {
  std::ostringstream os;
  auto emit = [&os](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "" : ",") << csv_escape(row[c]);
    }
    os << "\n";
  };
  emit(headers_);
  for (const auto& row : cells_) emit(row);
  return os.str();
}

bool Table::export_csv(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  out << csv();
  return static_cast<bool>(out);
}

std::string Table::str() const {
  std::ostringstream os;
  print(os);
  return os.str();
}

std::string format_si(double v, const char* unit) {
  std::ostringstream os;
  os << std::setprecision(4);
  const double a = std::fabs(v);
  if (a >= 1e9) {
    os << v / 1e9 << " G" << unit;
  } else if (a >= 1e6) {
    os << v / 1e6 << " M" << unit;
  } else if (a >= 1e3) {
    os << v / 1e3 << " k" << unit;
  } else {
    os << v << " " << unit;
  }
  return os.str();
}

}  // namespace ccredf::analysis
