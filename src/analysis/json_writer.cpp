#include "analysis/json_writer.hpp"

#include <array>
#include <charconv>
#include <cmath>

#include "common/error.hpp"

namespace ccredf::analysis {

std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  std::array<char, 64> buf{};
  const auto res = std::to_chars(buf.data(), buf.data() + buf.size(), v);
  CCREDF_EXPECT(res.ec == std::errc{}, "json_number: to_chars failed");
  return std::string(buf.data(), res.ptr);
}

std::string json_quote(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          constexpr char hex[] = "0123456789abcdef";
          out += "\\u00";
          out.push_back(hex[(c >> 4) & 0xF]);
          out.push_back(hex[c & 0xF]);
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

void JsonWriter::separate() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (!has_prev_.empty()) {
    if (has_prev_.back()) os_ << ',';
    has_prev_.back() = true;
  }
}

JsonWriter& JsonWriter::begin_object() {
  separate();
  os_ << '{';
  has_prev_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  CCREDF_EXPECT(!has_prev_.empty(), "JsonWriter: unbalanced end_object");
  has_prev_.pop_back();
  os_ << '}';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  separate();
  os_ << '[';
  has_prev_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  CCREDF_EXPECT(!has_prev_.empty(), "JsonWriter: unbalanced end_array");
  has_prev_.pop_back();
  os_ << ']';
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view name) {
  separate();
  os_ << json_quote(name) << ':';
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  separate();
  os_ << json_number(v);
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  separate();
  os_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  separate();
  os_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  separate();
  os_ << (v ? "true" : "false");
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view s) {
  separate();
  os_ << json_quote(s);
  return *this;
}

}  // namespace ccredf::analysis
