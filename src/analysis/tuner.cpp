#include "analysis/tuner.hpp"

#include <algorithm>

namespace ccredf::analysis {

std::int64_t min_legal_payload(const phy::RingPhy& phy,
                               const core::FrameCodec& codec) {
  return std::max(core::SlotTiming::min_payload_bytes(phy),
                  codec.collection_bits() + codec.distribution_bits());
}

SlotTuning tune_slot_size(const phy::RingPhy& phy,
                          const core::FrameCodec& codec,
                          sim::Duration latency_target) {
  const std::int64_t lo = min_legal_payload(phy, codec);
  const auto bit_ps = phy.link().bit_time().ps();

  // Eq. 4: latency(payload) = 2 * payload * bit_time + t_handover_max.
  // Solve for the largest payload under the target.
  const core::SlotTiming probe(phy, lo);
  const std::int64_t homax_ps = probe.max_handover().ps();
  const std::int64_t budget_ps = latency_target.ps() - homax_ps;
  const std::int64_t best = budget_ps / (2 * bit_ps);

  SlotTuning t;
  t.payload_bytes = std::max(lo, std::int64_t{1});
  t.feasible = best >= lo;
  if (t.feasible) t.payload_bytes = best;
  const core::SlotTiming timing(phy, t.payload_bytes);
  t.u_max = timing.u_max();
  t.slot = timing.slot();
  t.worst_case_latency = timing.worst_case_latency();
  return t;
}

}  // namespace ccredf::analysis
