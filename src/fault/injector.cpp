#include "fault/injector.hpp"

#include <algorithm>
#include <array>
#include <limits>
#include <utility>

#include "ring/segment.hpp"

namespace ccredf::fault {

namespace {
// Logical channels namespacing the keyed fault draws of one slot.  Two
// channels never share a stream, so adding a fault axis cannot shift
// the draws of another (the same property the sweep runner relies on).
constexpr std::uint64_t kChanDrop = 0;          // random token-loss draw
constexpr std::uint64_t kChanDistribution = 1;  // distribution-packet bits
constexpr std::uint64_t kChanBabble = 0x100;    // + node
constexpr std::uint64_t kChanCollection = 0x200;  // + node (BER)
constexpr std::uint64_t kChanTargeted = 0x300;    // + node (scheduled)
constexpr std::uint64_t kChanData = 0x400;        // + source (payload BER)
constexpr std::uint64_t kChanDataResidual = 0x500;  // + source (CRC forge)
// Tag separating the injector's stream family from workload streams
// derived from the same base seed.
constexpr std::uint64_t kFaultStreamTag = 0xFA;
}  // namespace

FaultInjector::FaultInjector(net::Network& net, std::uint64_t seed)
    : net_(net), seed_(sim::Rng::stream_seed(seed, kFaultStreamTag, 0)) {
  net_.set_fault_hook(this);
}

sim::Rng FaultInjector::rng_at(SlotIndex slot,
                               std::uint64_t channel) const {
  return sim::Rng::stream(seed_, static_cast<std::uint64_t>(slot), channel);
}

std::optional<FaultInjector::TargetedFault> FaultInjector::take(
    std::vector<TargetedFault>& v, SlotIndex slot, NodeId node) {
  const auto key = std::make_pair(slot, node);
  const auto it = std::lower_bound(
      v.begin(), v.end(), key,
      [](const TargetedFault& f, const std::pair<SlotIndex, NodeId>& k) {
        return std::make_pair(f.slot, f.node) < k;
      });
  if (it == v.end() || it->slot != slot || it->node != node) {
    return std::nullopt;
  }
  const TargetedFault f = *it;
  v.erase(it);
  return f;
}

void FaultInjector::insert_sorted(std::vector<TargetedFault>& v,
                                  TargetedFault f) {
  const auto it = std::lower_bound(
      v.begin(), v.end(), f, [](const TargetedFault& a,
                                const TargetedFault& b) {
        return std::make_pair(a.slot, a.node) <
               std::make_pair(b.slot, b.node);
      });
  v.insert(it, f);
}

void FaultInjector::schedule_token_loss(SlotIndex slot) {
  const auto it = std::lower_bound(scheduled_losses_.begin(),
                                   scheduled_losses_.end(), slot);
  if (it != scheduled_losses_.end() && *it == slot) return;
  scheduled_losses_.insert(it, slot);
}

void FaultInjector::set_random_token_loss(double p) {
  CCREDF_EXPECT(p >= 0.0 && p < 1.0,
                "FaultInjector: loss probability out of [0,1)");
  random_loss_p_ = p;
}

void FaultInjector::schedule_node_failure(NodeId id, sim::TimePoint at) {
  events_.push_back({at, next_event_seq_++, FaultEvent::Kind::kNodeFail, id});
  net_.sim().schedule_at(at, [this, id] { net_.fail_node(id); });
}

void FaultInjector::schedule_node_restore(NodeId id, sim::TimePoint at) {
  events_.push_back(
      {at, next_event_seq_++, FaultEvent::Kind::kNodeRestore, id});
  net_.sim().schedule_at(at, [this, id] { net_.restore_node(id); });
}

void FaultInjector::schedule_link_cut(LinkId l, sim::TimePoint at) {
  events_.push_back({at, next_event_seq_++, FaultEvent::Kind::kLinkCut, l});
  net_.sim().schedule_at(at, [this, l] { net_.cut_link(l); });
}

void FaultInjector::schedule_link_splice(LinkId l, sim::TimePoint at) {
  events_.push_back(
      {at, next_event_seq_++, FaultEvent::Kind::kLinkSplice, l});
  net_.sim().schedule_at(at, [this, l] { net_.splice_link(l); });
}

std::vector<FaultInjector::FaultEvent> FaultInjector::scheduled_events()
    const {
  std::vector<FaultEvent> out = events_;
  // Stable key (at, seq): seq is globally unique and monotonically
  // increasing in scheduling order, so ties on `at` keep FIFO order
  // across kinds -- exactly how the simulator's event queue fires them.
  std::sort(out.begin(), out.end(),
            [](const FaultEvent& a, const FaultEvent& b) {
              return a.at != b.at ? a.at < b.at : a.seq < b.seq;
            });
  return out;
}

void FaultInjector::set_control_ber(double ber) {
  ber_.emplace(net_.nodes(), ber, seed_);
}

void FaultInjector::set_control_ber(std::vector<double> link_ber) {
  CCREDF_EXPECT(link_ber.size() == net_.nodes(),
                "FaultInjector: one BER per ring link required");
  ber_.emplace(std::move(link_ber), seed_);
}

void FaultInjector::set_data_ber(double ber) {
  data_ber_.emplace(net_.nodes(), ber, seed_);
}

void FaultInjector::set_data_ber(std::vector<double> link_ber) {
  CCREDF_EXPECT(link_ber.size() == net_.nodes(),
                "FaultInjector: one data BER per ring link required");
  data_ber_.emplace(std::move(link_ber), seed_);
}

void FaultInjector::schedule_collection_drop(SlotIndex slot, NodeId node) {
  CCREDF_EXPECT(node < net_.nodes(), "FaultInjector: node out of range");
  insert_sorted(collection_drops_, TargetedFault{slot, node, 0});
}

void FaultInjector::schedule_collection_corruption(SlotIndex slot,
                                                   NodeId node, int bits) {
  CCREDF_EXPECT(node < net_.nodes(), "FaultInjector: node out of range");
  CCREDF_EXPECT(bits >= 1, "FaultInjector: must corrupt at least one bit");
  insert_sorted(collection_corruptions_, TargetedFault{slot, node, bits});
}

void FaultInjector::schedule_distribution_corruption(SlotIndex slot,
                                                     int bits) {
  CCREDF_EXPECT(bits >= 1, "FaultInjector: must corrupt at least one bit");
  insert_sorted(distribution_corruptions_, TargetedFault{slot, 0, bits});
}

void FaultInjector::schedule_payload_corruption(SlotIndex slot,
                                                NodeId node) {
  CCREDF_EXPECT(node < net_.nodes(), "FaultInjector: node out of range");
  insert_sorted(payload_corruptions_, TargetedFault{slot, node, 1});
}

void FaultInjector::set_babbling_node(NodeId id, double p) {
  CCREDF_EXPECT(id < net_.nodes(), "FaultInjector: node out of range");
  CCREDF_EXPECT(p >= 0.0 && p <= 1.0,
                "FaultInjector: babble probability out of [0,1]");
  babbler_ = id;
  babble_p_ = p;
}

SlotIndex FaultInjector::first_idle_fault_slot(SlotIndex from,
                                               SlotIndex limit) {
  if (limit <= from) return from;
  // Scheduled faults: the earliest entry at or after `from` caps the
  // quiet range (entries before `from` can never fire again -- slot
  // indices only grow).  Payload faults are exempt: an idle slot
  // completes no transfer, so filter_data is never consulted, exactly
  // as in slot-by-slot execution.
  const auto first_targeted = [from](const std::vector<TargetedFault>& v) {
    const auto it = std::lower_bound(
        v.begin(), v.end(), from,
        [](const TargetedFault& f, SlotIndex s) { return f.slot < s; });
    return it == v.end() ? std::numeric_limits<SlotIndex>::max() : it->slot;
  };
  SlotIndex lim = limit;
  {
    const auto it = std::lower_bound(scheduled_losses_.begin(),
                                     scheduled_losses_.end(), from);
    if (it != scheduled_losses_.end()) lim = std::min(lim, *it);
  }
  lim = std::min(lim, first_targeted(collection_drops_));
  lim = std::min(lim, first_targeted(collection_corruptions_));
  lim = std::min(lim, first_targeted(distribution_corruptions_));
  if (lim <= from) return from;

  // Random axes: replay the keyed draws of each slot.  Exposure is
  // constant across an idle stretch (master and failure set are frozen
  // while the engine fast-forwards), so per-node path probabilities are
  // computed once.
  const bool ber_active = ber_.has_value() && ber_->enabled();
  const bool babble_active = babble_p_ > 0.0 && babbler_ != kInvalidNode &&
                             !net_.node(babbler_).failed();
  if (!ber_active && !babble_active && random_loss_p_ <= 0.0) return lim;

  const NodeId n = net_.nodes();
  const NodeId master = net_.current_master();
  std::array<double, kMaxNodes> collection_p{};
  std::size_t live = 0;
  std::array<NodeId, kMaxNodes> live_node{};
  std::size_t request_bits = 0;
  std::size_t distribution_bits = 0;
  double distribution_p = 0.0;
  if (ber_active) {
    const core::FrameCodec& codec = net_.codec();
    request_bits = static_cast<std::size_t>(codec.request_bits());
    distribution_bits = static_cast<std::size_t>(codec.distribution_bits());
    distribution_p = ber_->path_error_probability(master, n - 1);
    for (NodeId h = 0; h < n; ++h) {
      const NodeId j = net_.topology().downstream(master, h);
      if (net_.node(j).failed()) continue;
      // Mirror filter_request: node j's record rides N-h links back to
      // the master (the master's own record rides the whole loop).
      const NodeId hops = h == 0 ? n : n - h;
      live_node[live] = j;
      collection_p[live] = ber_->path_error_probability(j, hops);
      ++live;
    }
  }

  for (SlotIndex s = from; s < lim; ++s) {
    if (random_loss_p_ > 0.0 &&
        rng_at(s, kChanDrop).bernoulli(random_loss_p_)) {
      return s;
    }
    if (babble_active &&
        rng_at(s, kChanBabble + babbler_).bernoulli(babble_p_)) {
      return s;
    }
    if (!ber_active) continue;
    for (std::size_t i = 0; i < live; ++i) {
      if (ber_->count_flips(s, kChanCollection + live_node[i],
                            collection_p[i], request_bits) != 0) {
        return s;
      }
    }
    if (ber_->count_flips(s, kChanDistribution, distribution_p,
                          distribution_bits) != 0) {
      return s;
    }
  }
  return lim;
}

bool FaultInjector::drop_distribution(SlotIndex slot) {
  bool drop = false;
  const auto it = std::lower_bound(scheduled_losses_.begin(),
                                   scheduled_losses_.end(), slot);
  if (it != scheduled_losses_.end() && *it == slot) {
    scheduled_losses_.erase(it);
    drop = true;
  }
  if (!drop && random_loss_p_ > 0.0 &&
      rng_at(slot, kChanDrop).bernoulli(random_loss_p_)) {
    drop = true;
  }
  if (drop) ++injected_;
  return drop;
}

void FaultInjector::flip_bits(core::FrameCodec::Encoded& e, int bits,
                              SlotIndex slot, std::uint64_t channel) {
  sim::Rng rng = rng_at(slot, channel);
  std::vector<std::size_t> chosen;
  while (static_cast<int>(chosen.size()) < bits &&
         chosen.size() < e.bit_count) {
    const std::size_t pos = rng.uniform_u64(e.bit_count);
    if (std::find(chosen.begin(), chosen.end(), pos) != chosen.end()) {
      continue;
    }
    chosen.push_back(pos);
    e.bytes[pos / 8] ^= static_cast<std::uint8_t>(0x80u >> (pos % 8));
    ++bits_flipped_;
  }
}

net::FaultHook::RequestFault FaultInjector::filter_request(
    SlotIndex slot, NodeId hop, NodeId node, core::Request& rq) {
  if (take(collection_drops_, slot, node)) return RequestFault::kDropped;

  const core::FrameCodec& codec = net_.codec();
  const auto targeted = take(collection_corruptions_, slot, node);

  // Babbling node: fabricate a broadcast request whenever the node
  // would otherwise stay idle (it has no message, so any grant it wins
  // is pure waste).
  if (!targeted && node == babbler_ && !rq.wants_slot() &&
      babble_p_ > 0.0) {
    sim::Rng rng = rng_at(slot, kChanBabble + node);
    if (rng.bernoulli(babble_p_)) {
      const NodeSet dests = net_.broadcast_dests(node);
      const auto seg =
          ring::Segment::for_transmission(net_.topology(), node, dests);
      rq.priority = static_cast<core::Priority>(
          rng.uniform_int(1, codec.layout().max_level()));
      rq.links = seg.links();
      rq.dests = dests;
      return RequestFault::kSpurious;
    }
  }

  // Wire-image corruption: scheduled flips, else link bit errors.
  const bool ber_active = ber_.has_value() && ber_->enabled();
  if (!targeted && !ber_active) return RequestFault::kNone;
  core::FrameCodec::Encoded enc = codec.encode_request(rq);
  const std::int64_t before = bits_flipped_;
  if (targeted) {
    flip_bits(enc, targeted->bits, slot, kChanTargeted + node);
  } else {
    // Node j writes its record at hop h and the record rides the rest
    // of the ring back to the master; the master's own record (hop 0)
    // rides the whole loop.  Its first exposed link is link j.
    const NodeId hops = hop == 0 ? net_.nodes() : net_.nodes() - hop;
    const double p = ber_->path_error_probability(node, hops);
    bits_flipped_ += ber_->corrupt(slot, kChanCollection + node, p,
                                   enc.bytes.data(), enc.bit_count);
  }
  if (bits_flipped_ == before) return RequestFault::kNone;
  const auto checked = codec.decode_request_checked(enc, node);
  if (!checked.ok) return RequestFault::kDetected;
  if (checked.request == rq) return RequestFault::kNone;
  rq = checked.request;
  return RequestFault::kSilent;
}

net::FaultHook::DistributionFault FaultInjector::filter_distribution(
    SlotIndex slot, core::DistributionPacket& p) {
  const auto targeted = take(distribution_corruptions_, slot, 0);
  const bool ber_active = ber_.has_value() && ber_->enabled();
  if (!targeted && !ber_active) return DistributionFault::kNone;

  const core::FrameCodec& codec = net_.codec();
  core::FrameCodec::Encoded enc = codec.encode(p);
  const std::int64_t before = bits_flipped_;
  if (targeted) {
    flip_bits(enc, targeted->bits, slot, kChanDistribution);
  } else {
    // Worst-case receiver: the node N-1 links downstream of the master
    // sees the packet after its full exposure.
    const NodeId master = net_.current_master();
    const double pb =
        ber_->path_error_probability(master, net_.nodes() - 1);
    bits_flipped_ += ber_->corrupt(slot, kChanDistribution, pb,
                                   enc.bytes.data(), enc.bit_count);
  }
  if (bits_flipped_ == before) return DistributionFault::kNone;
  const auto checked = codec.decode_distribution_checked(enc);
  if (!checked.ok) return DistributionFault::kDetected;
  if (checked.packet.hp_node != p.hp_node) {
    return DistributionFault::kSilentMaster;
  }
  if (!(checked.packet == p)) {
    p = checked.packet;
    return DistributionFault::kGrantView;
  }
  return DistributionFault::kNone;
}

net::FaultHook::DataFault FaultInjector::filter_data(
    SlotIndex slot, NodeId source, NodeId hops,
    std::int64_t payload_bits) {
  // The payload never rides the control channel, so no codec round-trip:
  // the flip count alone decides the outcome, and the receivers' guard
  // is the payload CRC-32 (or nothing).
  int flips = 0;
  if (take(payload_corruptions_, slot, source)) {
    flips = 1;
  } else if (data_ber_.has_value() && data_ber_->enabled()) {
    const double p = data_ber_->path_error_probability(source, hops);
    flips = data_ber_->count_flips(
        slot, kChanData + source, p,
        static_cast<std::size_t>(payload_bits));
  }
  if (flips == 0) return DataFault::kNone;
  data_bits_flipped_ += flips;
  if (!net_.config().with_payload_crc) return DataFault::kSilent;
  // CRC-32 residual: a corrupted packet forges a valid checksum with
  // probability 2^-32 per packet (keyed draw, deterministic).
  if (rng_at(slot, kChanDataResidual + source).uniform01() < 0x1p-32) {
    return DataFault::kSilent;
  }
  return DataFault::kDetected;
}

}  // namespace ccredf::fault
