#include "fault/injector.hpp"

namespace ccredf::fault {

FaultInjector::FaultInjector(net::Network& net, std::uint64_t seed)
    : net_(net), rng_(seed) {
  net_.set_fault_hook(this);
}

void FaultInjector::schedule_token_loss(SlotIndex slot) {
  scheduled_losses_.insert(slot);
}

void FaultInjector::set_random_token_loss(double p) {
  CCREDF_EXPECT(p >= 0.0 && p < 1.0,
                "FaultInjector: loss probability out of [0,1)");
  random_loss_p_ = p;
}

void FaultInjector::schedule_node_failure(NodeId id, sim::TimePoint at) {
  net_.sim().schedule_at(at, [this, id] { net_.fail_node(id); });
}

void FaultInjector::schedule_node_restore(NodeId id, sim::TimePoint at) {
  net_.sim().schedule_at(at, [this, id] { net_.restore_node(id); });
}

bool FaultInjector::drop_distribution(SlotIndex slot) {
  bool drop = false;
  if (scheduled_losses_.erase(slot) > 0) drop = true;
  if (!drop && random_loss_p_ > 0.0 && rng_.bernoulli(random_loss_p_)) {
    drop = true;
  }
  if (drop) ++injected_;
  return drop;
}

}  // namespace ccredf::fault
