// Fault injection (grows the paper's §8 future-work sketch into a
// physical error model).
//
// Fault families:
//   * token loss -- the distribution packet ending a chosen slot is
//     destroyed, so no node learns the next master; the network recovers
//     through the designated-restarter timeout built into the engine
//     (paper §8: "a time out and a designated node that always will
//     start could solve this");
//   * fail-silent node -- a node stops requesting, transmitting and
//     receiving at a chosen time (its ribbon is optically bypassed);
//     if it was the master, the clock dies and the token-loss recovery
//     path kicks in;
//   * control-channel bit errors -- every control-frame bit is flipped
//     independently per traversed link with the configured BER
//     (phy::BitErrorModel); the injector encodes the in-flight frame,
//     flips bits on the wire image, and classifies the outcome with the
//     integrity-checked decoders, so detection depends on the actual
//     guard strength (with/without the CRC extension);
//   * data-channel bit errors -- every payload bit of a completed
//     transfer is flipped independently per traversed link (source to
//     furthest destination) with the configured data BER; detection
//     depends on NetworkConfig::with_payload_crc, including the 2^-32
//     residual that forges a valid CRC-32;
//   * targeted faults -- drop or corrupt a specific node's request
//     record in a specific slot, or the distribution packet of a
//     specific slot (deterministic unit-test scenarios);
//   * babbling node -- a node fabricates requests it has no message
//     for, soaking up grants (the classic babbling-idiot hazard).
//
// Determinism: every random draw is keyed on (slot, channel) through
// Rng::stream_seed -- no generator state across calls -- so injections
// are reproducible regardless of call order, container iteration or
// sweep thread count, and the fault stream is independent of workload
// streams seeded from the same base.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/types.hpp"
#include "net/network.hpp"
#include "phy/bit_error.hpp"
#include "sim/rng.hpp"

namespace ccredf::fault {

class FaultInjector final : public net::FaultHook {
 public:
  /// Attaches to `net` as its fault hook; `net` must outlive the injector.
  explicit FaultInjector(net::Network& net, std::uint64_t seed = 1);

  // -- token loss ---------------------------------------------------------
  /// Destroy the distribution packet that ends slot `slot`.
  void schedule_token_loss(SlotIndex slot);
  /// Destroy distribution packets independently with probability `p`.
  void set_random_token_loss(double p);

  // -- fail-silent nodes --------------------------------------------------
  //
  // Idempotence contract: fail/restore events carry NO precondition.
  // `Network::fail_node` on an already-failed node and
  // `Network::restore_node` on a healthy node are no-ops (no queue
  // clearing, no CBS backlog reset, no trace, no state change) -- so
  // double-fail, double-restore and restore-of-healthy sequences, which
  // overlapping churn schedules produce naturally, are safe in any
  // order.  Events scheduled at the SAME timestamp fire in scheduling
  // order (the event queue breaks time ties by sequence number), so the
  // LAST action scheduled for a timestamp decides the node's state
  // after it.  tests/fault/injector_idempotence_test.cpp pins the
  // matrix.
  /// Fail node `id` at simulated time `at` (no-op if already failed).
  void schedule_node_failure(NodeId id, sim::TimePoint at);
  /// Restore node `id` at simulated time `at` (no-op if healthy).
  void schedule_node_restore(NodeId id, sim::TimePoint at);

  // -- severed segments (hard link cuts) ------------------------------------
  //
  // Same idempotence contract as the fail/restore pair: `Network::cut_link`
  // on an already-severed link and `Network::splice_link` on an intact one
  // are no-ops, and same-timestamp events fire in scheduling order (FIFO
  // across kinds -- a link event scheduled before a node event at the same
  // timestamp takes effect first).
  /// Sever link `l` (node l -> node l+1) at simulated time `at`.
  void schedule_link_cut(LinkId l, sim::TimePoint at);
  /// Splice (repair) link `l` at simulated time `at`.
  void schedule_link_splice(LinkId l, sim::TimePoint at);

  /// One entry of the merged fault-event schedule (node AND link events).
  struct FaultEvent {
    enum class Kind : std::uint8_t {
      kNodeFail,
      kNodeRestore,
      kLinkCut,
      kLinkSplice,
    };
    sim::TimePoint at;
    std::uint64_t seq = 0;  // global scheduling order (FIFO tie-break)
    Kind kind = Kind::kNodeFail;
    NodeId id = 0;  // node index, or link index for cut/splice
  };
  /// Merged, timestamp-sorted view of every scheduled node and link
  /// event.  Same-timestamp entries keep their scheduling order (the
  /// FIFO tie-break the simulator's event queue applies), so the view
  /// predicts exactly the order the events will fire in -- the contract
  /// ResilienceHook::next_deadline_slot needs when a link event precedes
  /// a node event in the same slot.
  [[nodiscard]] std::vector<FaultEvent> scheduled_events() const;

  // -- control-channel bit errors -----------------------------------------
  /// Uniform bit-error rate on every link of the ring.
  void set_control_ber(double ber);
  /// Per-link bit-error rates (link l = node l to its downstream).
  void set_control_ber(std::vector<double> link_ber);

  // -- data-channel bit errors --------------------------------------------
  /// Uniform bit-error rate on the data fibres of every link.
  void set_data_ber(double ber);
  /// Per-link data-fibre bit-error rates.
  void set_data_ber(std::vector<double> link_ber);

  // -- targeted faults ----------------------------------------------------
  /// Destroy node `node`'s request record in slot `slot`.
  void schedule_collection_drop(SlotIndex slot, NodeId node);
  /// Flip `bits` bits of node `node`'s request record in slot `slot`.
  void schedule_collection_corruption(SlotIndex slot, NodeId node,
                                      int bits = 1);
  /// Flip `bits` bits of the distribution packet ending slot `slot`.
  void schedule_distribution_corruption(SlotIndex slot, int bits = 1);
  /// Corrupt the payload of the transfer sourced by `node` whose final
  /// slot is `slot` (one flipped bit; deterministic test scenarios).
  void schedule_payload_corruption(SlotIndex slot, NodeId node);

  // -- babbling node ------------------------------------------------------
  /// Node `id` fabricates a spurious broadcast request with probability
  /// `p` in every slot it would otherwise stay idle.
  void set_babbling_node(NodeId id, double p);

  [[nodiscard]] std::int64_t token_losses_injected() const {
    return injected_;
  }
  /// Control-channel bits flipped so far (BER + targeted faults).
  [[nodiscard]] std::int64_t bits_flipped() const { return bits_flipped_; }
  /// Data-channel (payload) bits flipped so far.
  [[nodiscard]] std::int64_t data_bits_flipped() const {
    return data_bits_flipped_;
  }

  // net::FaultHook
  /// Fast-forward probe: replays every keyed draw the fault path would
  /// make on an all-idle slot (token-loss bernoulli, babble bernoulli,
  /// control-BER flip counts per live node, distribution-BER flip count)
  /// WITHOUT materialising frames or mutating counters, and returns the
  /// first slot in [from, limit) where any of them fires.  Because all
  /// randomness is keyed on (slot, channel), the probe and the full
  /// fault path always agree -- the engine's batched geometric-skip
  /// fallback rests on this.
  [[nodiscard]] SlotIndex first_idle_fault_slot(SlotIndex from,
                                                SlotIndex limit) override;
  bool drop_distribution(SlotIndex slot) override;
  RequestFault filter_request(SlotIndex slot, NodeId hop, NodeId node,
                              core::Request& rq) override;
  DistributionFault filter_distribution(
      SlotIndex slot, core::DistributionPacket& p) override;
  DataFault filter_data(SlotIndex slot, NodeId source, NodeId hops,
                        std::int64_t payload_bits) override;

 private:
  struct TargetedFault {
    SlotIndex slot = 0;
    NodeId node = 0;
    int bits = 1;
  };

  /// Keyed generator for this slot and logical channel.
  [[nodiscard]] sim::Rng rng_at(SlotIndex slot, std::uint64_t channel) const;
  /// Pops the entry for (slot, node) from a sorted fault list, if any.
  static std::optional<TargetedFault> take(std::vector<TargetedFault>& v,
                                           SlotIndex slot, NodeId node);
  /// Inserts into a fault list sorted by (slot, node).
  static void insert_sorted(std::vector<TargetedFault>& v, TargetedFault f);
  /// Flips `bits` distinct keyed-random bits of `e`.
  void flip_bits(core::FrameCodec::Encoded& e, int bits, SlotIndex slot,
                 std::uint64_t channel);

  net::Network& net_;
  std::uint64_t seed_;

  std::vector<SlotIndex> scheduled_losses_;  // sorted
  double random_loss_p_ = 0.0;

  std::optional<phy::BitErrorModel> ber_;
  std::optional<phy::BitErrorModel> data_ber_;

  std::vector<TargetedFault> collection_drops_;        // sorted
  std::vector<TargetedFault> collection_corruptions_;  // sorted
  std::vector<TargetedFault> distribution_corruptions_;  // sorted
  std::vector<TargetedFault> payload_corruptions_;       // sorted

  NodeId babbler_ = kInvalidNode;
  double babble_p_ = 0.0;

  std::vector<FaultEvent> events_;  // scheduling order (seq ascending)
  std::uint64_t next_event_seq_ = 0;

  std::int64_t injected_ = 0;
  std::int64_t bits_flipped_ = 0;
  std::int64_t data_bits_flipped_ = 0;
};

}  // namespace ccredf::fault
