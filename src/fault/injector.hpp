// Fault injection (realises the paper's §8 future-work scenarios).
//
// Two fault families:
//   * token loss -- the distribution packet ending a chosen slot is
//     destroyed, so no node learns the next master; the network recovers
//     through the designated-restarter timeout built into the engine
//     (paper §8: "a time out and a designated node that always will
//     start could solve this");
//   * fail-silent node -- a node stops requesting, transmitting and
//     receiving at a chosen time (its ribbon is optically bypassed);
//     if it was the master, the clock dies and the token-loss recovery
//     path kicks in.
#pragma once

#include <cstdint>
#include <unordered_set>

#include "common/types.hpp"
#include "net/network.hpp"
#include "sim/rng.hpp"

namespace ccredf::fault {

class FaultInjector final : public net::FaultHook {
 public:
  /// Attaches to `net` as its fault hook; `net` must outlive the injector.
  explicit FaultInjector(net::Network& net, std::uint64_t seed = 1);

  /// Destroy the distribution packet that ends slot `slot`.
  void schedule_token_loss(SlotIndex slot);

  /// Destroy distribution packets independently with probability `p`.
  void set_random_token_loss(double p);

  /// Fail node `id` at simulated time `at`.
  void schedule_node_failure(NodeId id, sim::TimePoint at);

  /// Restore node `id` at simulated time `at`.
  void schedule_node_restore(NodeId id, sim::TimePoint at);

  [[nodiscard]] std::int64_t token_losses_injected() const {
    return injected_;
  }

  // net::FaultHook
  bool drop_distribution(SlotIndex slot) override;

 private:
  net::Network& net_;
  sim::Rng rng_;
  std::unordered_set<SlotIndex> scheduled_losses_;
  double random_loss_p_ = 0.0;
  std::int64_t injected_ = 0;
};

}  // namespace ccredf::fault
