// ccredf_sweep: run a declarative scenario grid in parallel.
//
//   ccredf_sweep GRID_FILE [--threads N] [--out FILE] [--table]
//                [--no-fast-forward]
//
//   --threads N   worker threads (default 1; 0 = hardware concurrency)
//   --out FILE    write the aggregated JSON report to FILE instead of
//                 stdout
//   --table       also print a human-readable summary table (stdout)
//   --no-fast-forward
//                 force slot-by-slot execution on every shard (overrides
//                 the grid's `fast_forward` key).  The report must be
//                 byte-identical either way -- this switch exists to
//                 check exactly that (and to time the difference).
//
// The JSON report is byte-identical for any thread count (see
// src/sweep/runner.hpp), so diffing two runs of the same grid file is a
// meaningful regression check:
//
//   ccredf_sweep grid --threads 1 --out a.json
//   ccredf_sweep grid --threads 8 --out b.json
//   cmp a.json b.json
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "sweep/grid.hpp"
#include "sweep/report.hpp"
#include "sweep/runner.hpp"

namespace {

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " GRID_FILE [--threads N] [--out FILE] [--table]"
               " [--no-fast-forward]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ccredf;

  std::string grid_path;
  std::string out_path;
  int threads = 1;
  bool table = false;
  bool no_fast_forward = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--threads" && i + 1 < argc) {
      char* end = nullptr;
      const long v = std::strtol(argv[++i], &end, 10);
      if (end == nullptr || *end != '\0' || v < 0 || v > 4096) {
        std::cerr << "ccredf_sweep: bad --threads value\n";
        return usage(argv[0]);
      }
      threads = static_cast<int>(v);
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg == "--table") {
      table = true;
    } else if (arg == "--no-fast-forward") {
      no_fast_forward = true;
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "ccredf_sweep: unknown option `" << arg << "`\n";
      return usage(argv[0]);
    } else if (grid_path.empty()) {
      grid_path = arg;
    } else {
      std::cerr << "ccredf_sweep: more than one grid file\n";
      return usage(argv[0]);
    }
  }
  if (grid_path.empty()) return usage(argv[0]);

  sweep::GridSpec spec;
  std::string error;
  if (!sweep::load_grid_file(grid_path, spec, error)) {
    std::cerr << "ccredf_sweep: " << error << "\n";
    return 1;
  }
  if (no_fast_forward) spec.fast_forward = false;

  sweep::RunOptions opts;
  opts.threads = threads;
  const sweep::SweepResult result = sweep::run_sweep(spec, opts);

  std::cerr << "ccredf_sweep: " << result.points.size() << " points, "
            << result.shards << " shards, " << result.wall_seconds
            << " s wall";
  if (result.failed_shards > 0) {
    std::cerr << ", " << result.failed_shards << " FAILED shards";
  }
  std::cerr << "\n";

  if (table) {
    const std::vector<sweep::Metric> cols{
        sweep::Metric::kAdmittedFraction, sweep::Metric::kRtDelivered,
        sweep::Metric::kUserMissRatio,    sweep::Metric::kInversions,
        sweep::Metric::kMeanLatencyUs,    sweep::Metric::kGoodputBps};
    // The engine flags change how shards execute (never what they
    // compute), so surface them in the header where a reader comparing
    // two tables will see them first.
    std::string title = "sweep: " + grid_path + "  [planner=";
    for (std::size_t i = 0; i < spec.planners.size(); ++i) {
      if (i > 0) title += ',';
      title += spec.planners[i] ? "on" : "off";
    }
    title += spec.fast_forward ? " fast_forward=on]" : " fast_forward=off]";
    sweep::to_table(result, cols, title).print(std::cout);
  }

  if (out_path.empty()) {
    sweep::write_json(result, std::cout);
  } else if (!sweep::write_json_file(result, out_path)) {
    std::cerr << "ccredf_sweep: cannot write `" << out_path << "`\n";
    return 1;
  }
  return result.failed_shards > 0 ? 3 : 0;
}
